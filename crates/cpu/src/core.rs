//! The out-of-order pipeline model.

use crate::config::CoreConfig;
use crate::memory::DataMemory;
use crate::predictor::HybridPredictor;
use lnuca_types::{Addr, ConfigError, Cycle, MemRequest, MemResponse, ReqId};
use lnuca_workloads::{Instr, InstrKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Execution state of a reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Dispatched, waiting for operands / issue bandwidth / memory port.
    Dispatched,
    /// Issued to a functional unit or to the memory hierarchy.
    Executing,
    /// Result available; can commit when it reaches the ROB head.
    Completed,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    kind: InstrKind,
    addr: Option<Addr>,
    dep_seq: Option<u64>,
    state: EntryState,
    completes_at: Cycle,
}

impl RobEntry {
    fn is_memory(&self) -> bool {
        self.kind.is_memory()
    }

    fn class(&self) -> IssueClass {
        match self.kind {
            InstrKind::FpAlu => IssueClass::Fp,
            InstrKind::Load | InstrKind::Store => IssueClass::Mem,
            InstrKind::IntAlu | InstrKind::Branch { .. } => IssueClass::Int,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueClass {
    Int,
    Fp,
    Mem,
}

/// Aggregate counters of an [`OooCore`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions fetched (and dispatched) into the ROB.
    pub fetched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Branches whose prediction was wrong.
    pub mispredictions: u64,
    /// Sum of observed load latencies (issue to data return), in cycles.
    pub load_latency_sum: u64,
    /// Loads whose latency is included in [`CoreStats::load_latency_sum`].
    pub load_latency_samples: u64,
    /// Cycles in which dispatch stalled because the ROB was full.
    pub rob_full_stalls: u64,
    /// Cycles in which a ready load could not be accepted by the hierarchy.
    pub memory_reject_stalls: u64,
    /// Cycles in which commit stalled because the store buffer was full.
    pub store_buffer_stalls: u64,
}

impl CoreStats {
    /// Committed instructions per cycle after `elapsed` cycles.
    #[must_use]
    pub fn ipc(&self, elapsed: Cycle) -> f64 {
        if elapsed.0 == 0 {
            0.0
        } else {
            self.committed as f64 / elapsed.0 as f64
        }
    }

    /// Mean observed load latency in cycles.
    #[must_use]
    pub fn mean_load_latency(&self) -> f64 {
        if self.load_latency_samples == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.load_latency_samples as f64
        }
    }

    /// Misprediction rate over committed branches.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// A trace-driven out-of-order core.
///
/// The core consumes [`Instr`]s from any iterator (normally a
/// [`lnuca_workloads::TraceGenerator`]), models fetch / dispatch / issue /
/// execute / commit with the capacity limits of [`CoreConfig`], and talks to
/// the memory hierarchy through the [`DataMemory`] trait. It is deliberately
/// not cycle-exact against any real microarchitecture; what it reproduces is
/// the mechanism the paper's IPC numbers rely on — a limited instruction
/// window that can hide short cache latencies but not long ones, throttled
/// further by branch mispredictions and store-buffer pressure.
#[derive(Debug)]
pub struct OooCore<T> {
    config: CoreConfig,
    trace: T,
    trace_exhausted: bool,
    predictor: HybridPredictor,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    store_buffer: VecDeque<Addr>,
    pending_loads: HashMap<ReqId, (u64, Cycle)>,
    next_req_id: u64,
    /// Sequence number of the mispredicted branch blocking fetch, if any.
    fetch_blocked_on: Option<u64>,
    /// Fetch may resume at this cycle (misprediction recovery).
    fetch_stalled_until: Cycle,
    /// An instruction pulled from the trace that could not be dispatched yet
    /// (ROB/window/LSQ back-pressure).
    pending_fetch: Option<Instr>,
    /// Reused per-cycle buffer for hierarchy completions (zero-allocation
    /// steady state).
    completion_scratch: Vec<MemResponse>,
    /// Reused per-cycle buffer for the oldest-first issue sweep.
    seq_scratch: Vec<u64>,
    /// Open ROB-full stall window: the first cycle fetch found the ROB full.
    /// Stall *cycles* are accumulated into `stats.rob_full_stalls` lazily,
    /// when the window closes — ticking inside an open window is a no-op,
    /// which is what lets the event-horizon engine skip over it while
    /// producing bit-identical counters (DESIGN.md §10).
    rob_stall_since: Option<Cycle>,
    /// Open store-buffer-full commit stall window (same lazy accounting).
    store_stall_since: Option<Cycle>,
    /// Open memory-reject stall window: `(first cycle, rejects per cycle)`.
    /// While the hierarchy's state is frozen the same set of ready loads is
    /// rejected every cycle, so one `(since, k)` pair replays the per-cycle
    /// `+k` exactly; a change in `k` closes the window and opens a new one.
    mem_reject_since: Option<(Cycle, u64)>,
    /// `true` when the last issue pass issued nothing and rejected at least
    /// one load: every ready instruction is a load waiting on the hierarchy,
    /// so the core's next event is the hierarchy's, not `now + 1`.
    last_issue_all_rejected: bool,
    stats: CoreStats,
}

impl<T: Iterator<Item = Instr>> OooCore<T> {
    /// Creates a core that will execute `trace` under `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn new(config: CoreConfig, trace: T) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(OooCore {
            config,
            trace,
            trace_exhausted: false,
            predictor: HybridPredictor::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            store_buffer: VecDeque::new(),
            pending_loads: HashMap::new(),
            next_req_id: 0,
            fetch_blocked_on: None,
            fetch_stalled_until: Cycle::ZERO,
            pending_fetch: None,
            completion_scratch: Vec::new(),
            seq_scratch: Vec::new(),
            rob_stall_since: None,
            store_stall_since: None,
            mem_reject_since: None,
            last_issue_all_rejected: false,
            stats: CoreStats::default(),
        })
    }

    /// The configuration this core was built with.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The branch predictor (exposed for its accuracy counters).
    #[must_use]
    pub fn predictor(&self) -> &HybridPredictor {
        &self.predictor
    }

    /// Number of instructions committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// `true` once the trace is exhausted and every in-flight instruction
    /// has committed and every buffered store has drained.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.trace_exhausted && self.rob.is_empty() && self.store_buffer.is_empty()
    }

    /// Advances the core by one cycle, exchanging requests and completions
    /// with `memory`.
    pub fn tick(&mut self, now: Cycle, memory: &mut dyn DataMemory) {
        self.collect_completions(now, memory);
        self.finish_execution(now);
        self.commit(now);
        self.drain_store_buffer(now, memory);
        self.issue(now, memory);
        self.fetch_and_dispatch(now);
    }

    /// Closes any stall windows still open at the end of a run so the lazily
    /// accumulated counters match per-cycle accounting exactly (a window
    /// open at `now` covered every executed cycle up to `now - 1`).
    ///
    /// Drivers call this once, after the last [`OooCore::tick`], with the
    /// final value of the simulation clock.
    pub fn finalize_stats(&mut self, now: Cycle) {
        if let Some(since) = self.rob_stall_since.take() {
            self.stats.rob_full_stalls += now.since(since);
        }
        if let Some(since) = self.store_stall_since.take() {
            self.stats.store_buffer_stalls += now.since(since);
        }
        if let Some((since, k)) = self.mem_reject_since.take() {
            self.stats.memory_reject_stalls += now.since(since) * k;
        }
    }

    /// Earliest cycle strictly after `now` at which ticking this core could
    /// change its visible state, or `None` if the core is waiting purely on
    /// the memory hierarchy (or finished). Part of the event-horizon
    /// contract (DESIGN.md §10): the caller must merge this with the
    /// hierarchy's [`DataMemory::next_event`], because load completions and
    /// the acceptance of previously rejected loads are hierarchy events.
    ///
    /// Must be called right after [`OooCore::tick`] at `now`; the invariant
    /// is that ticking at any cycle in `(now, horizon)` is a no-op.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_finished() {
            return None;
        }
        let floor = now.next();
        // The store buffer drains one write per cycle, probing the hierarchy
        // each time; conservatively busy while it holds anything.
        if !self.store_buffer.is_empty() {
            return Some(floor);
        }
        let mut horizon: Option<Cycle> = None;
        let merge = |h: &mut Option<Cycle>, at: Cycle| Cycle::merge_horizon(h, at, floor);

        // Front end: if fetch can actually proceed (not branch-blocked, ROB
        // has room, the staged instruction is not window/LSQ-gated) it runs
        // every cycle once the misprediction penalty elapses. Blocked
        // variants need no event of their own — the commits/issues that
        // unblock them are merged below.
        if self.fetch_blocked_on.is_none()
            && (self.pending_fetch.is_some() || !self.trace_exhausted)
            && self.rob.len() >= self.config.rob_size
            && self.rob_stall_since.is_none()
        {
            // The ROB just filled: the next attempted fetch *opens* the lazy
            // stall window — a state change in its own right — so the core
            // stays busy until the attempt happens (at `fetch_stalled_until`
            // if the front end is serving a misprediction penalty).
            merge(&mut horizon, self.fetch_stalled_until);
            if horizon == Some(floor) {
                return horizon;
            }
        }
        if self.fetch_blocked_on.is_none()
            && (self.pending_fetch.is_some() || !self.trace_exhausted)
            && self.rob.len() < self.config.rob_size
        {
            let gated = match self.pending_fetch {
                Some(instr) => {
                    let class = match instr.kind {
                        InstrKind::FpAlu => IssueClass::Fp,
                        InstrKind::Load | InstrKind::Store => IssueClass::Mem,
                        _ => IssueClass::Int,
                    };
                    let window = match class {
                        IssueClass::Int => self.config.int_window,
                        IssueClass::Fp => self.config.fp_window,
                        IssueClass::Mem => self.config.mem_window,
                    };
                    (instr.kind.is_memory() && self.lsq_occupancy() >= self.config.lsq_size)
                        || self.waiting_in_class(class) >= window
                }
                // The next instruction is still in the trace: assume it is
                // dispatchable (over-reporting is safe, see the contract).
                None => false,
            };
            if !gated {
                if self.fetch_stalled_until <= floor {
                    return Some(floor);
                }
                merge(&mut horizon, self.fetch_stalled_until);
            }
        }

        // Commit: a completed head retires at its completion cycle (or next
        // cycle, if commit width ran out this cycle).
        if let Some(head) = self.rob.front() {
            if head.state == EntryState::Completed {
                if head.completes_at <= floor {
                    return Some(floor);
                }
                merge(&mut horizon, head.completes_at);
            }
        }

        for entry in &self.rob {
            match entry.state {
                EntryState::Dispatched => {
                    if self.operands_ready(entry.seq, now) {
                        // Ready work that was *all* rejected loads wakes with
                        // the hierarchy (merged by the caller); anything else
                        // will issue next cycle.
                        if !self.last_issue_all_rejected {
                            return Some(floor);
                        }
                    } else if let Some(dep) = entry.dep_seq {
                        if let Some(producer) = self.entry(dep) {
                            match producer.state {
                                // Operands become ready when the producer's
                                // result lands; executing loads wake via the
                                // hierarchy, dispatched producers via their
                                // own enabling event (merged in their turn).
                                EntryState::Completed => {
                                    merge(&mut horizon, producer.completes_at)
                                }
                                EntryState::Executing if !producer.kind.is_load() => {
                                    merge(&mut horizon, producer.completes_at)
                                }
                                _ => {}
                            }
                        }
                    }
                }
                // Non-load execution finishes at a known cycle; loads finish
                // when the hierarchy says so.
                EntryState::Executing => {
                    if !entry.kind.is_load() {
                        merge(&mut horizon, entry.completes_at);
                    }
                }
                EntryState::Completed => {}
            }
        }

        // Defensive: a blocked front end whose branch has already completed
        // resolves on the next tick (normally caught within the same tick).
        if let Some(seq) = self.fetch_blocked_on {
            if self.entry(seq).is_some_and(|e| e.state == EntryState::Completed) {
                return Some(floor);
            }
        }
        horizon
    }

    // --- pipeline stages -------------------------------------------------

    fn collect_completions(&mut self, now: Cycle, memory: &mut dyn DataMemory) {
        let mut responses = std::mem::take(&mut self.completion_scratch);
        responses.clear();
        memory.drain_completions(now, &mut responses);
        for &resp in &responses {
            if let Some((seq, issued_at)) = self.pending_loads.remove(&resp.id) {
                if let Some(entry) = self.entry_mut(seq) {
                    entry.state = EntryState::Completed;
                    entry.completes_at = resp.completed_at.max(now);
                }
                self.stats.load_latency_sum += resp.completed_at.since(issued_at);
                self.stats.load_latency_samples += 1;
            }
            // Store-write completions carry no dependent work: the store
            // buffer entry was freed when the hierarchy accepted the write.
        }
        self.completion_scratch = responses;
    }

    fn finish_execution(&mut self, now: Cycle) {
        let mut unblock: Option<(u64, Cycle)> = None;
        for entry in &mut self.rob {
            if entry.state == EntryState::Executing
                && !entry.kind.is_load()
                && entry.completes_at <= now
            {
                entry.state = EntryState::Completed;
                if self.fetch_blocked_on == Some(entry.seq) {
                    unblock = Some((entry.seq, entry.completes_at));
                }
            } else if entry.state == EntryState::Completed
                && self.fetch_blocked_on == Some(entry.seq)
            {
                unblock = Some((entry.seq, entry.completes_at));
            }
        }
        if let Some((_, resolved_at)) = unblock {
            // The front end restarts on the correct path after the
            // misprediction penalty.
            self.fetch_blocked_on = None;
            self.fetch_stalled_until = resolved_at + self.config.mispredict_penalty;
        }
    }

    fn commit(&mut self, now: Cycle) {
        let mut store_blocked = false;
        for _ in 0..self.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Completed || head.completes_at > now {
                break;
            }
            if head.kind.is_store() {
                if self.store_buffer.len() >= self.config.store_buffer_size {
                    store_blocked = true;
                    if self.store_stall_since.is_none() {
                        self.store_stall_since = Some(now);
                    }
                    break;
                }
                self.store_buffer
                    .push_back(head.addr.expect("stores carry an address"));
                self.stats.stores += 1;
            } else if head.kind.is_load() {
                self.stats.loads += 1;
            } else if head.kind.is_branch() {
                self.stats.branches += 1;
            }
            self.rob.pop_front();
            self.stats.committed += 1;
        }
        if !store_blocked {
            // The stall window covered every cycle from its opening through
            // the last blocked cycle (`now - 1`); account it in one step.
            if let Some(since) = self.store_stall_since.take() {
                self.stats.store_buffer_stalls += now.since(since);
            }
        }
    }

    fn drain_store_buffer(&mut self, now: Cycle, memory: &mut dyn DataMemory) {
        for _ in 0..self.config.store_drain_per_cycle {
            let Some(&addr) = self.store_buffer.front() else { break };
            let req = MemRequest::write(self.alloc_req_id(), addr, now);
            if memory.issue(req, now) {
                self.store_buffer.pop_front();
            } else {
                break;
            }
        }
    }

    fn issue(&mut self, now: Cycle, memory: &mut dyn DataMemory) {
        let mut int_issued = 0;
        let mut fp_issued = 0;
        let mut rejected: u64 = 0;
        // Loads and stores share the integer/memory issue ports in Table I.
        let int_mem_width = self.config.issue_width_int_mem;
        let fp_width = self.config.issue_width_fp;

        // Oldest-first issue, swept through a reused scratch buffer (the
        // per-cycle zero-allocation rule of DESIGN.md §9).
        let mut seqs = std::mem::take(&mut self.seq_scratch);
        seqs.clear();
        seqs.extend(
            self.rob
                .iter()
                .filter(|e| e.state == EntryState::Dispatched)
                .map(|e| e.seq),
        );
        for &seq in &seqs {
            if int_issued >= int_mem_width && fp_issued >= fp_width {
                break;
            }
            if !self.operands_ready(seq, now) {
                continue;
            }
            let (class, kind, addr) = {
                let e = self.entry(seq).expect("seq collected from the ROB");
                (e.class(), e.kind, e.addr)
            };
            match class {
                IssueClass::Fp => {
                    if fp_issued >= fp_width {
                        continue;
                    }
                    let done = now + self.config.fp_latency;
                    let entry = self.entry_mut(seq).expect("entry exists");
                    entry.state = EntryState::Executing;
                    entry.completes_at = done;
                    fp_issued += 1;
                }
                IssueClass::Int => {
                    if int_issued >= int_mem_width {
                        continue;
                    }
                    let done = now + self.config.int_latency;
                    let entry = self.entry_mut(seq).expect("entry exists");
                    entry.state = EntryState::Executing;
                    entry.completes_at = done;
                    int_issued += 1;
                }
                IssueClass::Mem => {
                    if int_issued >= int_mem_width {
                        continue;
                    }
                    match kind {
                        InstrKind::Store => {
                            // Address generation only; the write itself is
                            // performed from the store buffer after commit.
                            let done = now + self.config.int_latency;
                            let entry = self.entry_mut(seq).expect("entry exists");
                            entry.state = EntryState::Executing;
                            entry.completes_at = done;
                            int_issued += 1;
                        }
                        InstrKind::Load => {
                            let id = self.alloc_req_id();
                            let req = MemRequest::read(
                                id,
                                addr.expect("loads carry an address"),
                                now,
                            );
                            if memory.issue(req, now) {
                                self.pending_loads.insert(id, (seq, now));
                                let entry = self.entry_mut(seq).expect("entry exists");
                                entry.state = EntryState::Executing;
                                int_issued += 1;
                            } else {
                                // Hierarchy back-pressure (ports/MSHRs full):
                                // the request id is simply never used again.
                                rejected += 1;
                            }
                        }
                        _ => unreachable!("memory class covers only loads and stores"),
                    }
                }
            }
        }
        self.seq_scratch = seqs;

        // A pass that issued nothing and only collected rejections will
        // repeat itself verbatim every cycle until the hierarchy's state
        // changes (only loads can be rejected, and a ready non-load would
        // have issued); `next_event` uses this to defer to the hierarchy's
        // horizon instead of reporting busy.
        self.last_issue_all_rejected =
            rejected > 0 && int_issued == 0 && fp_issued == 0;

        // Lazy reject-stall accounting: one `(since, k)` window replays the
        // naive per-cycle `+k` exactly (see the field docs).
        match (self.mem_reject_since, rejected) {
            (None, 0) => {}
            (None, k) => self.mem_reject_since = Some((now, k)),
            (Some((since, k)), k_now) if k_now == k => {
                let _ = since; // unchanged window, nothing to account yet
            }
            (Some((since, k)), 0) => {
                self.stats.memory_reject_stalls += now.since(since) * k;
                self.mem_reject_since = None;
            }
            (Some((since, k)), k_now) => {
                self.stats.memory_reject_stalls += now.since(since) * k;
                self.mem_reject_since = Some((now, k_now));
            }
        }
    }

    fn fetch_and_dispatch(&mut self, now: Cycle) {
        if self.fetch_blocked_on.is_some() || now < self.fetch_stalled_until {
            return;
        }
        for _ in 0..self.config.fetch_width {
            if self.rob.len() >= self.config.rob_size {
                // Lazy ROB-full accounting: open the window once; every
                // subsequent full cycle is a no-op and the cycles are summed
                // into `rob_full_stalls` when the window closes below.
                if self.rob_stall_since.is_none() {
                    self.rob_stall_since = Some(now);
                }
                return;
            }
            // The ROB has room: any pending stall window ended before this
            // cycle — account the blocked cycles `[since, now)` in one step.
            if let Some(since) = self.rob_stall_since.take() {
                self.stats.rob_full_stalls += now.since(since);
            }
            let Some(instr) = self.peek_or_fetch() else {
                self.trace_exhausted = true;
                return;
            };
            if instr.kind.is_memory() && self.lsq_occupancy() >= self.config.lsq_size {
                return;
            }
            // Issue-window occupancy limits dispatch per class.
            let class = match instr.kind {
                InstrKind::FpAlu => IssueClass::Fp,
                InstrKind::Load | InstrKind::Store => IssueClass::Mem,
                _ => IssueClass::Int,
            };
            let window = match class {
                IssueClass::Int => self.config.int_window,
                IssueClass::Fp => self.config.fp_window,
                IssueClass::Mem => self.config.mem_window,
            };
            if self.waiting_in_class(class) >= window {
                // Leave the instruction for the next cycle.
                self.pending_fetch = Some(instr);
                return;
            }
            self.pending_fetch = None;

            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.fetched += 1;
            let dep_seq = if instr.dep_distance == 0 {
                None
            } else {
                seq.checked_sub(u64::from(instr.dep_distance))
            };
            let mut mispredicted = false;
            if let InstrKind::Branch { pc, taken } = instr.kind {
                mispredicted = !self.predictor.predict_and_update(pc, taken);
                if mispredicted {
                    self.stats.mispredictions += 1;
                }
            }
            self.rob.push_back(RobEntry {
                seq,
                kind: instr.kind,
                addr: instr.addr,
                dep_seq,
                state: EntryState::Dispatched,
                completes_at: Cycle::ZERO,
            });
            // This entry was dispatched *after* this tick's issue pass, so
            // that pass's everything-was-a-rejected-load analysis no longer
            // describes the ROB: the newcomer may be ready right now and
            // issue next cycle. Invalidate the flag so `next_event` stays
            // busy instead of deferring to the hierarchy's horizon.
            self.last_issue_all_rejected = false;
            if mispredicted {
                // Wrong-path instructions are not modelled; fetch simply
                // stops until the branch resolves and the penalty elapses.
                self.fetch_blocked_on = Some(seq);
                return;
            }
        }
    }

    // --- helpers ----------------------------------------------------------

    fn alloc_req_id(&mut self) -> ReqId {
        let id = ReqId(self.next_req_id);
        self.next_req_id += 1;
        id
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        let first = self.rob.front()?.seq;
        self.rob.get(usize::try_from(seq.checked_sub(first)?).ok()?)
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let first = self.rob.front()?.seq;
        self.rob
            .get_mut(usize::try_from(seq.checked_sub(first)?).ok()?)
    }

    fn operands_ready(&self, seq: u64, now: Cycle) -> bool {
        let Some(entry) = self.entry(seq) else { return false };
        match entry.dep_seq {
            None => true,
            Some(dep) => match self.entry(dep) {
                // Producer already committed (left the ROB).
                None => true,
                Some(p) => p.state == EntryState::Completed && p.completes_at <= now,
            },
        }
    }

    fn lsq_occupancy(&self) -> usize {
        self.rob.iter().filter(|e| e.is_memory()).count()
    }

    fn waiting_in_class(&self, class: IssueClass) -> usize {
        self.rob
            .iter()
            .filter(|e| e.state == EntryState::Dispatched && e.class() == class)
            .count()
    }

    fn peek_or_fetch(&mut self) -> Option<Instr> {
        if let Some(i) = self.pending_fetch {
            return Some(i);
        }
        let next = self.trace.next();
        self.pending_fetch = next;
        next
    }
}

impl<T> OooCore<T> {
    /// Returns the number of instructions currently in the reorder buffer.
    #[must_use]
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::FixedLatencyMemory;
    use lnuca_workloads::{TraceGenerator, WorkloadProfile};

    fn run_trace(
        instrs: Vec<Instr>,
        latency: u64,
        max_cycles: u64,
    ) -> (CoreStats, Cycle, FixedLatencyMemory) {
        let mut core = OooCore::new(CoreConfig::paper(), instrs.into_iter()).unwrap();
        let mut mem = FixedLatencyMemory::new(latency);
        let mut now = Cycle(0);
        while !core.is_finished() && now.0 < max_cycles {
            mem.tick(now);
            core.tick(now, &mut mem);
            now = now.next();
        }
        assert!(core.is_finished(), "run did not converge within {max_cycles} cycles");
        core.finalize_stats(now);
        (*core.stats(), now, mem)
    }

    #[test]
    fn independent_alu_instructions_approach_commit_width_ipc() {
        let instrs = vec![Instr::int_alu(); 4_000];
        let (stats, cycles, _) = run_trace(instrs, 1, 100_000);
        assert_eq!(stats.committed, 4_000);
        let ipc = stats.ipc(cycles);
        assert!(ipc > 3.0, "independent ALU ops should commit near 4 IPC, got {ipc}");
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let instrs: Vec<Instr> = (0..2_000)
            .map(|_| Instr {
                kind: InstrKind::IntAlu,
                addr: None,
                dep_distance: 1,
            })
            .collect();
        let (stats, cycles, _) = run_trace(instrs, 1, 100_000);
        let ipc = stats.ipc(cycles);
        assert!(ipc < 1.2, "a serial chain cannot exceed 1 IPC, got {ipc}");
        assert!(ipc > 0.5, "but it should stay near 1 IPC, got {ipc}");
    }

    #[test]
    fn slower_memory_lowers_ipc() {
        let make = || -> Vec<Instr> {
            (0..3_000u64)
                .map(|i| {
                    if i % 3 == 0 {
                        // Loads to distinct blocks defeat any caching in the
                        // fixed-latency memory (which has none anyway).
                        Instr::load(Addr(i * 64))
                    } else {
                        Instr {
                            kind: InstrKind::IntAlu,
                            addr: None,
                            dep_distance: 1,
                        }
                    }
                })
                .collect()
        };
        let (fast_stats, fast_cycles, _) = run_trace(make(), 2, 500_000);
        let (slow_stats, slow_cycles, _) = run_trace(make(), 150, 2_000_000);
        assert!(fast_stats.ipc(fast_cycles) > slow_stats.ipc(slow_cycles) * 1.3);
        assert!(slow_stats.mean_load_latency() > fast_stats.mean_load_latency());
    }

    #[test]
    fn stores_drain_through_the_store_buffer() {
        let instrs: Vec<Instr> =
            (0..500u64).map(|i| Instr::store(Addr(i * 32))).collect();
        let (stats, _, mem) = run_trace(instrs, 3, 200_000);
        assert_eq!(stats.stores, 500);
        assert_eq!(stats.committed, 500);
        // Every store write eventually reaches the memory.
        assert_eq!(mem.accepted(), 500);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A branch with random outcomes is unpredictable; the same trace with
        // a constant outcome is nearly free.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let branchy = |predictable: bool| -> Vec<Instr> {
            let mut rng = SmallRng::seed_from_u64(17);
            let mut v = Vec::new();
            for i in 0..3_000u64 {
                v.push(Instr::int_alu());
                let taken = if predictable { true } else { rng.gen_bool(0.5) };
                v.push(Instr {
                    kind: InstrKind::Branch { pc: (i % 7) * 13, taken },
                    addr: None,
                    dep_distance: 1,
                });
            }
            v
        };
        let (good, good_cycles, _) = run_trace(branchy(true), 1, 400_000);
        let (bad, bad_cycles, _) = run_trace(branchy(false), 1, 400_000);
        assert!(good.ipc(good_cycles) > bad.ipc(bad_cycles));
        assert!(bad.mispredictions > good.mispredictions);
    }

    #[test]
    fn synthetic_workload_runs_to_completion_and_reports_sane_ipc() {
        let trace: Vec<Instr> = TraceGenerator::new(WorkloadProfile::default(), 3)
            .take(20_000)
            .collect();
        let (stats, cycles, _) = run_trace(trace, 2, 2_000_000);
        assert_eq!(stats.committed, 20_000);
        let ipc = stats.ipc(cycles);
        assert!(ipc > 0.3 && ipc < 4.0, "IPC {ipc} out of plausible range");
        assert!(stats.loads > 3_000);
        assert!(stats.branches > 2_000);
    }

    #[test]
    fn event_horizon_stepping_matches_naive_stepping() {
        // Same mixed trace against the same 150-cycle memory, once stepping
        // every cycle and once jumping to min(core, memory) horizons: the
        // final clock and every counter must agree bit-exactly.
        let make = || -> Vec<Instr> {
            (0..2_000u64)
                .map(|i| match i % 7 {
                    0 => Instr::load(Addr(i * 256)),
                    1 => Instr {
                        kind: InstrKind::Branch { pc: i % 5, taken: i % 3 == 0 },
                        addr: None,
                        dep_distance: 1,
                    },
                    2 => Instr::store(Addr(i * 64)),
                    3 => Instr {
                        kind: InstrKind::FpAlu,
                        addr: None,
                        dep_distance: 2,
                    },
                    _ => Instr {
                        kind: InstrKind::IntAlu,
                        addr: None,
                        dep_distance: 1,
                    },
                })
                .collect()
        };

        let (naive_stats, naive_end, _) = run_trace(make(), 150, 3_000_000);

        let mut core = OooCore::new(CoreConfig::paper(), make().into_iter()).unwrap();
        let mut mem = FixedLatencyMemory::new(150);
        let mut now = Cycle(0);
        let mut jumped = false;
        while !core.is_finished() && now.0 < 3_000_000 {
            mem.tick(now);
            core.tick(now, &mut mem);
            now = if core.is_finished() {
                now.next()
            } else {
                let horizon = match (mem.next_event(now), core.next_event(now)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let target = horizon.unwrap_or_else(|| now.next()).max(now.next());
                jumped |= target > now.next();
                target
            };
        }
        core.finalize_stats(now);

        assert!(jumped, "a 150-cycle memory must open skippable windows");
        assert_eq!(now, naive_end, "both engines must agree on the final cycle");
        assert_eq!(*core.stats(), naive_stats);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = CoreConfig::paper();
        cfg.commit_width = 0;
        assert!(OooCore::new(cfg, std::iter::empty::<Instr>()).is_err());
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut core = OooCore::new(CoreConfig::paper(), std::iter::empty::<Instr>()).unwrap();
        let mut mem = FixedLatencyMemory::new(1);
        core.tick(Cycle(0), &mut mem);
        assert!(core.is_finished());
        assert_eq!(core.committed(), 0);
        assert_eq!(core.rob_occupancy(), 0);
    }
}
