//! The interface between the core and the memory hierarchy.

use lnuca_types::{Cycle, MemRequest, MemResponse, ServiceLevel};
use std::collections::VecDeque;

/// A data-memory hierarchy as seen by the core: an in-order-completion-free
/// request/response port.
///
/// The hierarchies in `lnuca-sim` (conventional, L-NUCA, D-NUCA, ...)
/// implement this trait; [`FixedLatencyMemory`] provides a trivial
/// implementation for unit tests and micro-benchmarks of the core itself.
pub trait DataMemory {
    /// Offers a request to the hierarchy at cycle `now`.
    ///
    /// Returns `false` if the hierarchy cannot accept it this cycle (port
    /// busy, MSHRs full, write buffer full); the caller must retry later.
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool;

    /// Completions that have become available up to and including `now`.
    fn completions(&mut self, now: Cycle) -> Vec<MemResponse>;

    /// Advances the hierarchy by one cycle.
    fn tick(&mut self, now: Cycle);
}

/// A memory that accepts every request and completes it after a fixed
/// latency. Useful to test and benchmark the core model in isolation and to
/// establish the no-memory-stall IPC upper bound of a workload.
///
/// # Example
///
/// ```
/// use lnuca_cpu::{DataMemory, FixedLatencyMemory};
/// use lnuca_types::{Addr, Cycle, MemRequest, ReqId};
///
/// let mut memory = FixedLatencyMemory::new(10);
/// assert!(memory.issue(MemRequest::read(ReqId(1), Addr(0x40), Cycle(5)), Cycle(5)));
/// assert!(memory.completions(Cycle(14)).is_empty());
/// assert_eq!(memory.completions(Cycle(15)).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    latency: u64,
    in_flight: VecDeque<MemResponse>,
    accepted: u64,
}

impl FixedLatencyMemory {
    /// Creates a memory with the given fixed latency in cycles.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        FixedLatencyMemory {
            latency,
            in_flight: VecDeque::new(),
            accepted: 0,
        }
    }

    /// Number of requests accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl DataMemory for FixedLatencyMemory {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        self.accepted += 1;
        self.in_flight.push_back(MemResponse::for_request(
            &req,
            now + self.latency,
            ServiceLevel::L1,
        ));
        true
    }

    fn completions(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut done = Vec::new();
        let mut remaining = VecDeque::new();
        while let Some(resp) = self.in_flight.pop_front() {
            if resp.completed_at <= now {
                done.push(resp);
            } else {
                remaining.push_back(resp);
            }
        }
        self.in_flight = remaining;
        done
    }

    fn tick(&mut self, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::{Addr, ReqId};

    #[test]
    fn fixed_latency_memory_completes_after_latency() {
        let mut m = FixedLatencyMemory::new(3);
        assert!(m.issue(MemRequest::read(ReqId(1), Addr(0), Cycle(10)), Cycle(10)));
        assert!(m.issue(MemRequest::write(ReqId(2), Addr(64), Cycle(11)), Cycle(11)));
        assert!(m.completions(Cycle(12)).is_empty());
        let first = m.completions(Cycle(13));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id, ReqId(1));
        assert_eq!(m.completions(Cycle(14)).len(), 1);
        assert_eq!(m.accepted(), 2);
    }

    #[test]
    fn trait_object_usability() {
        fn accepts_dyn(mem: &mut dyn DataMemory) {
            assert!(mem.issue(MemRequest::read(ReqId(9), Addr(0x100), Cycle(0)), Cycle(0)));
        }
        let mut m = FixedLatencyMemory::new(1);
        accepts_dyn(&mut m);
        assert_eq!(m.accepted(), 1);
    }
}
