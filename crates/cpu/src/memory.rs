//! The interface between the core and the memory hierarchy.

use lnuca_types::{Cycle, MemRequest, MemResponse, ServiceLevel};
use std::collections::VecDeque;

/// A data-memory hierarchy as seen by the core: an in-order-completion-free
/// request/response port.
///
/// The hierarchies in `lnuca-sim` (conventional, L-NUCA, D-NUCA, ...)
/// implement this trait; [`FixedLatencyMemory`] provides a trivial
/// implementation for unit tests and micro-benchmarks of the core itself.
pub trait DataMemory {
    /// Offers a request to the hierarchy at cycle `now`.
    ///
    /// Returns `false` if the hierarchy cannot accept it this cycle (port
    /// busy, MSHRs full, write buffer full); the caller must retry later.
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool;

    /// Appends the completions that have become available up to and
    /// including `now` to `out`, oldest first.
    ///
    /// `out` is not cleared: the caller owns the scratch buffer and reuses
    /// its capacity across cycles, so a steady-state cycle performs no heap
    /// allocation (the zero-allocation invariant of DESIGN.md §9).
    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>);

    /// Completions that have become available up to and including `now`.
    ///
    /// Allocating convenience over [`DataMemory::drain_completions`] for
    /// tests and examples; the simulation loop uses the drain form.
    fn completions(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        self.drain_completions(now, &mut out);
        out
    }

    /// Advances the hierarchy by one cycle.
    fn tick(&mut self, now: Cycle);

    /// Earliest cycle strictly after `now` at which this hierarchy's state
    /// can change on its own (a queued completion maturing, a buffered
    /// message becoming forwardable, a per-cycle drain that still has work),
    /// or `None` when the hierarchy is fully quiescent until the next
    /// [`DataMemory::issue`].
    ///
    /// This is the event-horizon contract of DESIGN.md §10. The driver may
    /// skip `now` straight to the minimum horizon across all components, so
    /// ticking this hierarchy at any cycle in `(now, next_event(now))` must
    /// be a complete no-op — **no component may under-report its horizon**.
    /// Over-reporting (returning an earlier cycle than the real event, e.g.
    /// `now + 1` while busy) is always safe and merely disables skipping.
    ///
    /// The default is maximally conservative — always busy — so custom
    /// implementations degrade to per-cycle stepping until they opt in.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now.next())
    }
}

/// Moves every response with `completed_at <= now` from `queue` to `out`
/// (oldest first), keeping the rest in order — one rotation of the queue,
/// no temporary allocation.
///
/// The shared building block for [`DataMemory::drain_completions`]
/// implementations whose completion queue is not sorted by completion time.
pub fn drain_ready(queue: &mut VecDeque<MemResponse>, now: Cycle, out: &mut Vec<MemResponse>) {
    for _ in 0..queue.len() {
        let resp = queue.pop_front().expect("length checked");
        if resp.completed_at <= now {
            out.push(resp);
        } else {
            queue.push_back(resp);
        }
    }
}

/// A memory that accepts every request and completes it after a fixed
/// latency. Useful to test and benchmark the core model in isolation and to
/// establish the no-memory-stall IPC upper bound of a workload.
///
/// # Example
///
/// ```
/// use lnuca_cpu::{DataMemory, FixedLatencyMemory};
/// use lnuca_types::{Addr, Cycle, MemRequest, ReqId};
///
/// let mut memory = FixedLatencyMemory::new(10);
/// assert!(memory.issue(MemRequest::read(ReqId(1), Addr(0x40), Cycle(5)), Cycle(5)));
/// assert!(memory.completions(Cycle(14)).is_empty());
/// assert_eq!(memory.completions(Cycle(15)).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    latency: u64,
    in_flight: VecDeque<MemResponse>,
    accepted: u64,
}

impl FixedLatencyMemory {
    /// Creates a memory with the given fixed latency in cycles.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        FixedLatencyMemory {
            latency,
            in_flight: VecDeque::new(),
            accepted: 0,
        }
    }

    /// Number of requests accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl DataMemory for FixedLatencyMemory {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        self.accepted += 1;
        self.in_flight.push_back(MemResponse::for_request(
            &req,
            now + self.latency,
            ServiceLevel::L1,
        ));
        true
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        drain_ready(&mut self.in_flight, now, out);
    }

    fn tick(&mut self, _now: Cycle) {}

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.in_flight
            .iter()
            .map(|r| r.completed_at.max(now.next()))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::{Addr, ReqId};

    #[test]
    fn fixed_latency_memory_completes_after_latency() {
        let mut m = FixedLatencyMemory::new(3);
        assert!(m.issue(MemRequest::read(ReqId(1), Addr(0), Cycle(10)), Cycle(10)));
        assert!(m.issue(MemRequest::write(ReqId(2), Addr(64), Cycle(11)), Cycle(11)));
        assert!(m.completions(Cycle(12)).is_empty());
        let first = m.completions(Cycle(13));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id, ReqId(1));
        assert_eq!(m.completions(Cycle(14)).len(), 1);
        assert_eq!(m.accepted(), 2);
    }

    #[test]
    fn fixed_latency_memory_reports_its_completion_horizon() {
        let mut m = FixedLatencyMemory::new(10);
        assert_eq!(m.next_event(Cycle(0)), None, "idle memory has no events");
        assert!(m.issue(MemRequest::read(ReqId(1), Addr(0), Cycle(5)), Cycle(5)));
        assert_eq!(m.next_event(Cycle(5)), Some(Cycle(15)));
        // Already-mature completions still floor at now + 1.
        assert_eq!(m.next_event(Cycle(40)), Some(Cycle(41)));
        let _ = m.completions(Cycle(15));
        assert_eq!(m.next_event(Cycle(15)), None);
    }

    #[test]
    fn trait_object_usability() {
        fn accepts_dyn(mem: &mut dyn DataMemory) {
            assert!(mem.issue(MemRequest::read(ReqId(9), Addr(0x100), Cycle(0)), Cycle(0)));
        }
        let mut m = FixedLatencyMemory::new(1);
        accepts_dyn(&mut m);
        assert_eq!(m.accepted(), 1);
    }
}
