//! A trace-driven out-of-order core timing model.
//!
//! The paper evaluates L-NUCA on an extended SimpleScalar/Alpha out-of-order
//! processor (Table I: 4-wide fetch/issue/commit, 128-entry ROB, 64-entry
//! LSQ, 32/24/16-entry INT/FP/MEM issue windows, 48-entry store buffer,
//! bimodal + gshare predictor, 8-cycle misprediction penalty). SimpleScalar
//! itself is a C simulator that cannot be reused here, so this crate rebuilds
//! the pieces of it that the evaluation depends on: the ability (limited by
//! ROB/issue-window/MSHR capacity and branch mispredictions) to overlap cache
//! misses with useful work, which is what turns cache-hit latency into IPC.
//!
//! * [`CoreConfig`] — the Table I core parameters,
//! * [`HybridPredictor`] — the bimodal + gshare branch predictor,
//! * [`DataMemory`] — the interface the core uses to talk to any memory
//!   hierarchy (implemented by `lnuca-sim`'s hierarchies and by the simple
//!   [`FixedLatencyMemory`] used in tests),
//! * [`OooCore`] — the pipeline model itself.
//!
//! # Example
//!
//! ```
//! use lnuca_cpu::{CoreConfig, DataMemory, FixedLatencyMemory, OooCore};
//! use lnuca_types::Cycle;
//! use lnuca_workloads::{TraceGenerator, WorkloadProfile};
//!
//! let trace = TraceGenerator::new(WorkloadProfile::default(), 1).take(10_000);
//! let mut core = OooCore::new(CoreConfig::paper(), trace)?;
//! let mut memory = FixedLatencyMemory::new(4);
//! let mut now = Cycle(0);
//! while !core.is_finished() {
//!     memory.tick(now);
//!     core.tick(now, &mut memory);
//!     now = now.next();
//! }
//! assert!(core.stats().ipc(now) > 0.1);
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod memory;
pub mod predictor;

pub use crate::core::{CoreStats, OooCore};
pub use config::CoreConfig;
pub use memory::{drain_ready, DataMemory, FixedLatencyMemory};
pub use predictor::HybridPredictor;
