//! Property tests: the fixed-slot [`Directory`] against a map-based
//! reference model (ISSUE 10 satellite; DESIGN.md §17).
//!
//! The model is the obvious one — a `BTreeMap` from line to "who holds it
//! and how" — maintained by applying exactly the actions the directory
//! returns (recalls first, then invalidations, then the requester's new
//! state). After every operation the directory and the model must agree on
//! the complete tracked population, and two protocol invariants are pinned
//! across arbitrary interleavings of read/write/evict per line:
//!
//! 1. **No illegal state**: a Modified line has exactly one holder (its
//!    owner); a Shared line has at least one and no owner.
//! 2. **No lost dirty writeback**: every removal or downgrade of a
//!    Modified copy — remote read, ownership transfer, dirty eviction,
//!    capacity recall — bumps the directory's writeback counter exactly
//!    once.

use lnuca_coherence::{Directory, DirectoryConfig, MsiState, Transaction};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CORES: usize = 4;
/// Small line pool + tiny directory so capacity recalls are routine, not
/// a corner case.
const LINES: u64 = 24;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelLine {
    Shared(u64),
    Modified(usize),
}

#[derive(Debug, Default)]
struct Model {
    lines: BTreeMap<u64, ModelLine>,
    expected_writebacks: u64,
}

impl Model {
    fn holds(&self, core: usize, line: u64) -> bool {
        match self.lines.get(&line) {
            Some(ModelLine::Shared(mask)) => mask & (1 << core) != 0,
            Some(ModelLine::Modified(owner)) => *owner == core,
            None => false,
        }
    }

    fn holds_dirty(&self, core: usize, line: u64) -> bool {
        matches!(self.lines.get(&line), Some(ModelLine::Modified(owner)) if *owner == core)
    }

    /// Applies a transaction's side effects (recall, invalidations) and
    /// the requester's new state for `line`.
    fn apply(&mut self, core: usize, line: u64, tx: &Transaction) {
        if let Some(recall) = tx.recall {
            let victim = self
                .lines
                .remove(&recall.line)
                .expect("the directory recalled a line the model does not track");
            let (mask, was_dirty) = match victim {
                ModelLine::Shared(mask) => (mask, false),
                ModelLine::Modified(owner) => (1 << owner, true),
            };
            assert_eq!(recall.invalidate, mask, "recall names every holder");
            assert_eq!(recall.writeback, was_dirty, "dirty recalls flush");
            if was_dirty {
                self.expected_writebacks += 1;
            }
        }
        let prior = self.lines.get(&line).copied();
        // A remote Modified copy flushed on this transition?
        let remote_dirty = matches!(prior, Some(ModelLine::Modified(owner)) if owner != core);
        assert_eq!(
            tx.writeback, remote_dirty,
            "writeback exactly when a remote owner's dirty copy goes"
        );
        if remote_dirty {
            self.expected_writebacks += 1;
        }
        match tx.state {
            MsiState::Shared => {
                let mask = match prior {
                    Some(ModelLine::Shared(mask)) => mask,
                    Some(ModelLine::Modified(owner)) => 1 << owner,
                    None => 0,
                };
                assert_eq!(tx.invalidate, 0, "reads never invalidate");
                self.lines.insert(line, ModelLine::Shared(mask | (1 << core)));
            }
            MsiState::Modified => {
                let others = match prior {
                    Some(ModelLine::Shared(mask)) => mask & !(1u64 << core),
                    Some(ModelLine::Modified(owner)) if owner != core => 1 << owner,
                    _ => 0,
                };
                assert_eq!(tx.invalidate, others, "writes invalidate every other holder");
                self.lines.insert(line, ModelLine::Modified(core));
            }
            MsiState::Invalid => panic!("a demand transition cannot leave the requester Invalid"),
        }
    }

    fn evict(&mut self, core: usize, line: u64, dirty: bool) {
        if dirty {
            self.expected_writebacks += 1;
        }
        match self.lines.get(&line).copied() {
            Some(ModelLine::Modified(owner)) => {
                assert_eq!(owner, core);
                self.lines.remove(&line);
            }
            Some(ModelLine::Shared(mask)) => {
                let rest = mask & !(1u64 << core);
                if rest == 0 {
                    self.lines.remove(&line);
                } else {
                    self.lines.insert(line, ModelLine::Shared(rest));
                }
            }
            None => panic!("model eviction of an untracked line"),
        }
    }
}

/// Directory and model must agree on the entire tracked population, and
/// the directory must be in a legal MSI state throughout.
fn check_agreement(dir: &Directory, model: &Model) {
    let mut tracked = 0usize;
    for (line, state, sharers, owner) in dir.lines() {
        tracked += 1;
        match state {
            MsiState::Modified => {
                assert_eq!(sharers.count_ones(), 1, "Modified line {line:#x} has one holder");
                let o = owner.expect("Modified lines have an owner");
                assert_eq!(sharers, 1 << o, "the owner is the holder");
                assert_eq!(model.lines.get(&line), Some(&ModelLine::Modified(o)));
            }
            MsiState::Shared => {
                assert!(sharers != 0, "Shared line {line:#x} has at least one holder");
                assert_eq!(owner, None);
                assert_eq!(model.lines.get(&line), Some(&ModelLine::Shared(sharers)));
            }
            MsiState::Invalid => panic!("lines() must not yield free slots"),
        }
    }
    assert_eq!(tracked, model.lines.len(), "same tracked population");
    assert_eq!(
        dir.counters().writebacks,
        model.expected_writebacks,
        "every dirty copy removal produced exactly one writeback"
    );
}

fn tiny_directory() -> Directory {
    let mut config = DirectoryConfig::new(CORES);
    config.sets = 4;
    config.ways = 2;
    Directory::new(config).unwrap()
}

proptest! {
    #[test]
    fn arbitrary_interleavings_stay_legal_and_conserve_dirty_writebacks(
        ops in proptest::collection::vec((0usize..CORES, 0u64..LINES, 0u8..4), 1..300)
    ) {
        let mut dir = tiny_directory();
        let mut model = Model::default();
        for (core, line, kind) in ops {
            match kind {
                0 | 1 => {
                    let tx = if kind == 0 { dir.read(core, line) } else { dir.write(core, line) };
                    model.apply(core, line, &tx);
                }
                // Evictions are only legal for a held copy; redraw the
                // no-op case as a read so every op advances the machine.
                _ => {
                    if model.holds(core, line) {
                        let dirty = kind == 3 && model.holds_dirty(core, line);
                        prop_assert!(dir.evict(core, line, dirty));
                        model.evict(core, line, dirty);
                    } else {
                        let tx = dir.read(core, line);
                        model.apply(core, line, &tx);
                    }
                }
            }
            check_agreement(&dir, &model);
        }
    }

    #[test]
    fn the_default_geometry_never_recalls_under_a_small_working_set(
        ops in proptest::collection::vec((0usize..CORES, 0u64..LINES, any::<bool>()), 1..200)
    ) {
        // With 8192 slots and 24 lines, allocation never needs a victim:
        // recalls are purely a capacity mechanism.
        let mut dir = Directory::new(DirectoryConfig::new(CORES)).unwrap();
        for (core, line, write) in ops {
            let tx = if write { dir.write(core, line) } else { dir.read(core, line) };
            prop_assert!(tx.recall.is_none());
        }
        prop_assert_eq!(dir.counters().recalls, 0);
    }
}

#[test]
fn a_torture_sequence_of_every_op_kind_agrees_with_the_model() {
    // Deterministic long mixed run (an LCG, not proptest) so the test is
    // reproducible under `cargo test` without the macro's case budget.
    let mut dir = tiny_directory();
    let mut model = Model::default();
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..5_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let core = (x >> 7) as usize % CORES;
        let line = (x >> 23) % LINES;
        match (x >> 49) % 3 {
            0 => {
                let tx = dir.read(core, line);
                model.apply(core, line, &tx);
            }
            1 => {
                let tx = dir.write(core, line);
                model.apply(core, line, &tx);
            }
            _ if model.holds(core, line) => {
                let dirty = model.holds_dirty(core, line);
                assert!(dir.evict(core, line, dirty));
                model.evict(core, line, dirty);
            }
            _ => {
                let tx = dir.write(core, line);
                model.apply(core, line, &tx);
            }
        }
    }
    check_agreement(&dir, &model);
    let c = dir.counters();
    assert!(c.recalls > 0, "the tiny geometry must exercise recalls");
    assert!(c.downgrades > 0 && c.invalidations_sent > 0);
}
