//! MSI directory coherence for multi-root hierarchies (DESIGN.md §17).
//!
//! A [`Directory`] sits logically at the shared level of a CMP
//! [`HierarchySpec`](https://docs.rs/lnuca-sim) — below the per-core
//! private caches, above the shared backing — and tracks, for every line
//! with at least one private copy, *which* cores hold it and in what MSI
//! state. The simulator consults it **synchronously** at the point a core's
//! demand access reaches the shared level, and applies the returned
//! [`Transaction`] (invalidations, downgrades, writebacks, capacity
//! recalls) before the access's completion time is even scheduled. All
//! protocol state therefore changes in program order per core and in core
//! index order across cores — there is no transient state and no message
//! interleaving for an execution engine to reorder, which is what keeps
//! `CycleStep`, `EventHorizon` and the batched runner bit-identical over
//! coherent runs.
//!
//! The directory is **fixed-slot** (DESIGN.md §9): a set-associative array
//! of entries sized at construction, sharer sets as `u64` bitmasks (hence
//! [`MAX_CORES`] = 64), owners as a core index. The steady-state
//! transition path allocates nothing; when a set fills up, the
//! least-recently-touched entry is *recalled* — every private copy is
//! invalidated (flushing a dirty owner) so the directory may forget the
//! line without losing information. Recalls are reported in the
//! [`Transaction`] so the caller can apply them to the private caches.
//!
//! States are plain MSI:
//!
//! - **Modified** — exactly one core (the *owner*) holds the line,
//!   dirty with respect to the shared level; `sharers` is the owner's bit.
//! - **Shared** — one or more cores hold clean read-only copies.
//! - **Invalid** — no private copies; the entry is free. (Lines the
//!   directory has never seen, or has recalled, are implicitly Invalid.)
//!
//! A dirty copy never silently disappears: every transition that removes
//! or downgrades a Modified copy sets [`Transaction::writeback`] (or
//! [`Recall::writeback`]), and `tests/msi_model.rs` property-tests the
//! state machine against a map-based model to pin exactly that — arbitrary
//! interleavings of read/write/evict can neither reach an illegal state
//! nor lose a dirty writeback.
//!
//! # Example
//!
//! ```
//! use lnuca_coherence::{Directory, DirectoryConfig, MsiState};
//!
//! let mut dir = Directory::new(DirectoryConfig::new(4))?;
//! let line = 0x40;
//! assert_eq!(dir.write(0, line).state, MsiState::Modified);
//! // A remote read downgrades the dirty owner and flushes its copy.
//! let tx = dir.read(1, line);
//! assert_eq!(tx.state, MsiState::Shared);
//! assert!(tx.writeback);
//! // A remote write invalidates both sharers' copies.
//! let tx = dir.write(2, line);
//! assert_eq!(tx.invalidate, 0b011);
//! assert_eq!(dir.state_of(line), (MsiState::Modified, 0b100, Some(2)));
//! # Ok::<(), lnuca_coherence::DirectoryConfigError>(())
//! ```

use std::fmt;

/// Hard ceiling on the number of cores a [`Directory`] can track: sharer
/// sets are `u64` bitmasks.
pub const MAX_CORES: usize = 64;

/// MSI stable states. There are no transient states: transitions are
/// applied synchronously (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsiState {
    /// No private copy exists.
    Invalid,
    /// One or more clean read-only copies exist.
    Shared,
    /// Exactly one dirty copy exists, held by the owner.
    Modified,
}

impl MsiState {
    /// Stable lowercase label (`"invalid"` / `"shared"` / `"modified"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MsiState::Invalid => "invalid",
            MsiState::Shared => "shared",
            MsiState::Modified => "modified",
        }
    }
}

/// Geometry of a [`Directory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DirectoryConfig {
    /// Number of cores whose private caches the directory tracks
    /// (`1..=`[`MAX_CORES`]).
    pub cores: usize,
    /// Number of sets (a power of two).
    pub sets: usize,
    /// Entries per set.
    pub ways: usize,
}

impl DirectoryConfig {
    /// Default geometry for `cores` cores: 512 sets × 16 ways = 8192
    /// tracked lines, comfortably above the private capacity of the paper
    /// configurations so recalls stay a capacity corner case rather than
    /// the steady state.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        DirectoryConfig {
            cores,
            sets: 512,
            ways: 16,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`DirectoryConfigError`] naming the offending field if the
    /// core count is outside `1..=`[`MAX_CORES`], `sets` is zero or not a
    /// power of two, or `ways` is zero.
    pub fn validate(&self) -> Result<(), DirectoryConfigError> {
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(DirectoryConfigError(format!(
                "cores must be 1..={MAX_CORES}, got {}",
                self.cores
            )));
        }
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(DirectoryConfigError(format!(
                "sets must be a non-zero power of two, got {}",
                self.sets
            )));
        }
        if self.ways == 0 {
            return Err(DirectoryConfigError("ways must be non-zero".to_owned()));
        }
        Ok(())
    }
}

/// An invalid [`DirectoryConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryConfigError(pub String);

impl fmt::Display for DirectoryConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid directory configuration: {}", self.0)
    }
}

impl std::error::Error for DirectoryConfigError {}

/// A directory capacity victim: the line every holder must drop so the
/// directory may forget it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recall {
    /// The recalled line.
    pub line: u64,
    /// Bitmask of cores that must invalidate their copy.
    pub invalidate: u64,
    /// `true` when the recalled entry was Modified: the owner's dirty copy
    /// is flushed to the shared level as part of the recall.
    pub writeback: bool,
}

/// What one directory transition requires of the private caches. The
/// caller applies `recall` first (it concerns a *different* line), then
/// `invalidate` for the requested line, then installs its own copy in
/// `state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// The requester's resulting state for the line (never
    /// [`MsiState::Invalid`]).
    pub state: MsiState,
    /// Bitmask of cores that must invalidate their copy of the requested
    /// line. Never includes the requester. Empty for reads (a remote owner
    /// *downgrades* to sharer rather than invalidating).
    pub invalidate: u64,
    /// `true` when a remote Modified copy was flushed to the shared level
    /// as part of this transition (downgrade on read, ownership transfer
    /// on write).
    pub writeback: bool,
    /// `true` when the directory already tracked the line (the requester
    /// may or may not have held a copy).
    pub hit: bool,
    /// Capacity victim evicted to make room for this line, if any.
    pub recall: Option<Recall>,
}

/// Monotonic transition counters, all starting at zero.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct DirectoryCounters {
    /// Read transitions processed.
    pub reads: u64,
    /// Write transitions processed.
    pub writes: u64,
    /// Private-cache eviction notices processed.
    pub evictions: u64,
    /// Transitions that found the line already tracked.
    pub hits: u64,
    /// Transitions that had to allocate an entry.
    pub misses: u64,
    /// Private copies invalidated by the protocol (sum over cores; recalls
    /// included).
    pub invalidations_sent: u64,
    /// Modified owners downgraded to Shared by a remote read.
    pub downgrades: u64,
    /// Dirty copies flushed to the shared level (downgrades, ownership
    /// transfers, dirty evictions, dirty recalls).
    pub writebacks: u64,
    /// Capacity victims recalled.
    pub recalls: u64,
    /// Invalidations *received* by each core (indexed by core, length =
    /// configured core count).
    pub per_core_invalidations: Vec<u64>,
}

impl DirectoryCounters {
    fn new(cores: usize) -> Self {
        DirectoryCounters {
            reads: 0,
            writes: 0,
            evictions: 0,
            hits: 0,
            misses: 0,
            invalidations_sent: 0,
            downgrades: 0,
            writebacks: 0,
            recalls: 0,
            per_core_invalidations: vec![0; cores],
        }
    }
}

/// One directory slot. `state == Invalid` means the slot is free; the
/// other fields are then meaningless.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    sharers: u64,
    owner: u8,
    state: MsiState,
    /// LRU stamp: larger = touched more recently.
    stamp: u64,
}

const FREE: Entry = Entry {
    line: 0,
    sharers: 0,
    owner: 0,
    state: MsiState::Invalid,
    stamp: 0,
};

/// Fixed-slot set-associative MSI directory; see the [module docs](self)
/// for the protocol and determinism contract.
#[derive(Debug, Clone)]
pub struct Directory {
    config: DirectoryConfig,
    /// `config.sets * config.ways` slots, set-major.
    entries: Vec<Entry>,
    set_mask: u64,
    clock: u64,
    counters: DirectoryCounters,
}

impl Directory {
    /// Builds an empty directory; the only allocation the directory ever
    /// performs.
    ///
    /// # Errors
    ///
    /// Returns a [`DirectoryConfigError`] if `config` does not
    /// [validate](DirectoryConfig::validate).
    pub fn new(config: DirectoryConfig) -> Result<Self, DirectoryConfigError> {
        config.validate()?;
        Ok(Directory {
            entries: vec![FREE; config.sets * config.ways],
            set_mask: (config.sets - 1) as u64,
            clock: 0,
            counters: DirectoryCounters::new(config.cores),
            config,
        })
    }

    /// The geometry the directory was built with.
    #[must_use]
    pub fn config(&self) -> &DirectoryConfig {
        &self.config
    }

    /// The transition counters.
    #[must_use]
    pub fn counters(&self) -> &DirectoryCounters {
        &self.counters
    }

    /// Current state of `line`: `(state, sharer mask, owner)`. Untracked
    /// lines report `(Invalid, 0, None)`; the owner is `Some` only in
    /// Modified.
    #[must_use]
    pub fn state_of(&self, line: u64) -> (MsiState, u64, Option<usize>) {
        match self.find(line) {
            Some(idx) => {
                let e = &self.entries[idx];
                let owner = match e.state {
                    MsiState::Modified => Some(e.owner as usize),
                    _ => None,
                };
                (e.state, e.sharers, owner)
            }
            None => (MsiState::Invalid, 0, None),
        }
    }

    /// Iterates over every tracked line as `(line, state, sharer mask,
    /// owner)`, in slot order. For end-of-run audits (the coherence
    /// oracle's final owner/sharer-set check); not a steady-state path.
    pub fn lines(&self) -> impl Iterator<Item = (u64, MsiState, u64, Option<usize>)> + '_ {
        self.entries.iter().filter(|e| e.state != MsiState::Invalid).map(|e| {
            let owner = match e.state {
                MsiState::Modified => Some(e.owner as usize),
                _ => None,
            };
            (e.line, e.state, e.sharers, owner)
        })
    }

    /// A core's demand **read** of `line` reached the shared level. A
    /// remote Modified owner is downgraded to Shared (flushing its dirty
    /// copy — [`Transaction::writeback`]); the requester joins the sharer
    /// set.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `core` is out of range.
    pub fn read(&mut self, core: usize, line: u64) -> Transaction {
        debug_assert!(core < self.config.cores, "core {core} out of range");
        self.counters.reads += 1;
        let bit = 1u64 << core;
        self.clock += 1;
        let stamp = self.clock;
        match self.find(line) {
            Some(idx) => {
                self.counters.hits += 1;
                let e = &mut self.entries[idx];
                e.stamp = stamp;
                let mut writeback = false;
                if e.state == MsiState::Modified && e.sharers != bit {
                    // Remote owner: downgrade, keeping it as a sharer.
                    writeback = true;
                    self.counters.downgrades += 1;
                    self.counters.writebacks += 1;
                    e.state = MsiState::Shared;
                }
                if e.state == MsiState::Shared {
                    e.sharers |= bit;
                }
                Transaction {
                    state: e.state,
                    invalidate: 0,
                    writeback,
                    hit: true,
                    recall: None,
                }
            }
            None => {
                self.counters.misses += 1;
                let recall = self.allocate(line, stamp, MsiState::Shared, bit, core);
                Transaction {
                    state: MsiState::Shared,
                    invalidate: 0,
                    writeback: false,
                    hit: false,
                    recall,
                }
            }
        }
    }

    /// A core's demand **write** of `line` reached the shared level (a
    /// write miss, or an upgrade of a Shared copy). Every other holder is
    /// invalidated; a remote Modified owner's dirty copy is flushed first
    /// ([`Transaction::writeback`]). The requester becomes the owner.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `core` is out of range.
    pub fn write(&mut self, core: usize, line: u64) -> Transaction {
        debug_assert!(core < self.config.cores, "core {core} out of range");
        self.counters.writes += 1;
        let bit = 1u64 << core;
        self.clock += 1;
        let stamp = self.clock;
        match self.find(line) {
            Some(idx) => {
                self.counters.hits += 1;
                let e = &mut self.entries[idx];
                e.stamp = stamp;
                let invalidate = e.sharers & !bit;
                let writeback = e.state == MsiState::Modified && e.sharers != bit;
                e.state = MsiState::Modified;
                e.sharers = bit;
                e.owner = core as u8;
                if writeback {
                    self.counters.writebacks += 1;
                }
                self.apply_invalidations(invalidate);
                Transaction {
                    state: MsiState::Modified,
                    invalidate,
                    writeback,
                    hit: true,
                    recall: None,
                }
            }
            None => {
                self.counters.misses += 1;
                let recall = self.allocate(line, stamp, MsiState::Modified, bit, core);
                Transaction {
                    state: MsiState::Modified,
                    invalidate: 0,
                    writeback: false,
                    hit: false,
                    recall,
                }
            }
        }
    }

    /// A core's private cache **evicted** its copy of `line` (`dirty` =
    /// the copy was Modified and was written back to the shared level by
    /// the caller). The core leaves the sharer set; the entry is freed
    /// when the last copy goes.
    ///
    /// Returns `true` when the directory was tracking the core's copy. An
    /// eviction notice for an untracked copy is counted but otherwise
    /// ignored (it can only happen if the caller violates the protocol —
    /// debug builds assert instead).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `core` is out of range, if the line or
    /// copy is untracked, or if `dirty` is claimed by a non-owner.
    pub fn evict(&mut self, core: usize, line: u64, dirty: bool) -> bool {
        debug_assert!(core < self.config.cores, "core {core} out of range");
        self.counters.evictions += 1;
        let bit = 1u64 << core;
        let Some(idx) = self.find(line) else {
            debug_assert!(false, "evict of untracked line {line:#x}");
            return false;
        };
        let e = &mut self.entries[idx];
        if e.sharers & bit == 0 {
            debug_assert!(false, "core {core} evicting line {line:#x} it does not hold");
            return false;
        }
        debug_assert!(
            !dirty || (e.state == MsiState::Modified && e.owner as usize == core),
            "core {core} claims a dirty copy of line {line:#x} it does not own"
        );
        if dirty && e.state == MsiState::Modified && e.owner as usize == core {
            self.counters.writebacks += 1;
        }
        e.sharers &= !bit;
        if e.sharers == 0 {
            *e = FREE;
        } else if e.state == MsiState::Modified {
            // The owner left without a writeback claim (clean drop of an
            // exclusive copy cannot happen under MSI — the owner is dirty
            // by definition — so this is unreachable when the caller obeys
            // the protocol; `dirty` handled it above).
            e.state = MsiState::Shared;
        }
        true
    }

    /// Index of `line`'s slot, if tracked.
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.set_base(line);
        (base..base + self.config.ways)
            .find(|&i| self.entries[i].state != MsiState::Invalid && self.entries[i].line == line)
    }

    /// First slot of `line`'s set.
    fn set_base(&self, line: u64) -> usize {
        // Multiplicative hash so block-index keys spread over the sets
        // even for strided sharing patterns; determinism is all that is
        // required of it.
        let hashed = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        (hashed & self.set_mask) as usize * self.config.ways
    }

    /// Installs `line` in its set (evicting the LRU victim if the set is
    /// full — the returned [`Recall`]) with the given initial state.
    fn allocate(
        &mut self,
        line: u64,
        stamp: u64,
        state: MsiState,
        sharers: u64,
        owner: usize,
    ) -> Option<Recall> {
        let base = self.set_base(line);
        let set = base..base + self.config.ways;
        let slot = match set.clone().find(|&i| self.entries[i].state == MsiState::Invalid) {
            Some(free) => free,
            None => {
                // Recall the least-recently-touched entry: every holder
                // drops its copy, a dirty owner flushes first.
                let victim = set
                    .min_by_key(|&i| self.entries[i].stamp)
                    .expect("ways is non-zero");
                let v = self.entries[victim];
                let writeback = v.state == MsiState::Modified;
                if writeback {
                    self.counters.writebacks += 1;
                }
                self.counters.recalls += 1;
                self.apply_invalidations(v.sharers);
                self.entries[victim] = FREE;
                let recall = Recall {
                    line: v.line,
                    invalidate: v.sharers,
                    writeback,
                };
                self.entries[victim] = Entry {
                    line,
                    sharers,
                    owner: owner as u8,
                    state,
                    stamp,
                };
                return Some(recall);
            }
        };
        self.entries[slot] = Entry {
            line,
            sharers,
            owner: owner as u8,
            state,
            stamp,
        };
        None
    }

    /// Books `mask`'s invalidations into the counters.
    fn apply_invalidations(&mut self, mask: u64) {
        if mask == 0 {
            return;
        }
        self.counters.invalidations_sent += u64::from(mask.count_ones());
        let mut rest = mask;
        while rest != 0 {
            let core = rest.trailing_zeros() as usize;
            if let Some(slot) = self.counters.per_core_invalidations.get_mut(core) {
                *slot += 1;
            }
            rest &= rest - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(cores: usize) -> Directory {
        Directory::new(DirectoryConfig::new(cores)).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_geometry() {
        assert!(DirectoryConfig::new(0).validate().is_err());
        assert!(DirectoryConfig::new(65).validate().is_err());
        assert!(DirectoryConfig::new(64).validate().is_ok());
        let mut c = DirectoryConfig::new(4);
        c.sets = 12;
        assert!(c.validate().is_err());
        c.sets = 16;
        c.ways = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn private_read_and_write_transitions_follow_msi() {
        let mut d = dir(2);
        let tx = d.read(0, 0x80);
        assert_eq!((tx.state, tx.invalidate, tx.writeback, tx.hit), (MsiState::Shared, 0, false, false));
        // Upgrade: the lone sharer writes.
        let tx = d.write(0, 0x80);
        assert_eq!((tx.state, tx.invalidate, tx.writeback), (MsiState::Modified, 0, false));
        assert_eq!(d.state_of(0x80), (MsiState::Modified, 0b01, Some(0)));
        // Re-write by the owner is silent.
        let tx = d.write(0, 0x80);
        assert!(tx.hit && tx.invalidate == 0 && !tx.writeback);
    }

    #[test]
    fn remote_read_downgrades_the_owner_and_flushes() {
        let mut d = dir(2);
        d.write(0, 0x80);
        let tx = d.read(1, 0x80);
        assert_eq!(tx.state, MsiState::Shared);
        assert_eq!(tx.invalidate, 0, "MSI downgrades on read, it does not invalidate");
        assert!(tx.writeback);
        assert_eq!(d.state_of(0x80), (MsiState::Shared, 0b11, None));
        assert_eq!(d.counters().downgrades, 1);
        assert_eq!(d.counters().writebacks, 1);
    }

    #[test]
    fn remote_write_invalidates_every_other_holder() {
        let mut d = dir(4);
        for core in 0..3 {
            d.read(core, 0x100);
        }
        let tx = d.write(3, 0x100);
        assert_eq!(tx.invalidate, 0b0111);
        assert!(!tx.writeback, "sharers were clean");
        assert_eq!(d.state_of(0x100), (MsiState::Modified, 0b1000, Some(3)));
        assert_eq!(d.counters().invalidations_sent, 3);
        assert_eq!(d.counters().per_core_invalidations, vec![1, 1, 1, 0]);
    }

    #[test]
    fn ownership_transfer_flushes_the_previous_owner() {
        let mut d = dir(2);
        d.write(0, 0x40);
        let tx = d.write(1, 0x40);
        assert_eq!(tx.invalidate, 0b01);
        assert!(tx.writeback);
        assert_eq!(d.state_of(0x40), (MsiState::Modified, 0b10, Some(1)));
    }

    #[test]
    fn evictions_retire_copies_and_free_the_entry() {
        let mut d = dir(2);
        d.read(0, 0x40);
        d.read(1, 0x40);
        assert!(d.evict(0, 0x40, false));
        assert_eq!(d.state_of(0x40), (MsiState::Shared, 0b10, None));
        assert!(d.evict(1, 0x40, false));
        assert_eq!(d.state_of(0x40), (MsiState::Invalid, 0, None));
        d.write(0, 0x80);
        assert!(d.evict(0, 0x80, true));
        assert_eq!(d.counters().writebacks, 1);
        assert_eq!(d.state_of(0x80), (MsiState::Invalid, 0, None));
    }

    #[test]
    fn a_full_set_recalls_its_lru_entry() {
        let mut d = Directory::new(DirectoryConfig {
            cores: 2,
            sets: 1,
            ways: 2,
        })
        .unwrap();
        d.write(0, 1);
        d.read(1, 2);
        let tx = d.read(0, 3);
        let recall = tx.recall.expect("the set was full");
        assert_eq!(recall.line, 1, "line 1 was least recently touched");
        assert_eq!(recall.invalidate, 0b01);
        assert!(recall.writeback, "the recalled entry was Modified");
        assert_eq!(d.state_of(1), (MsiState::Invalid, 0, None));
        assert_eq!(d.state_of(3), (MsiState::Shared, 0b01, None));
        assert_eq!(d.counters().recalls, 1);
    }

    #[test]
    fn lines_iterates_the_tracked_population() {
        let mut d = dir(2);
        d.write(0, 0x10);
        d.read(1, 0x20);
        let mut lines: Vec<_> = d.lines().collect();
        lines.sort_by_key(|&(line, ..)| line);
        assert_eq!(
            lines,
            vec![
                (0x10, MsiState::Modified, 0b01, Some(0)),
                (0x20, MsiState::Shared, 0b10, None),
            ]
        );
    }
}
