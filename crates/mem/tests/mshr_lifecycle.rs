//! Model-based property test for the fixed-slot [`MshrFile`] lifecycle:
//! random interleavings of `allocate`, `retire` and `complete` against an
//! obviously-correct map model. Slot reuse (the PR-3 fixed-array rewrite)
//! must never lose, duplicate or misattribute an outstanding miss.

use lnuca_mem::{MshrAllocation, MshrFile};
use lnuca_types::{Addr, ReqId};
use proptest::prelude::*;
use std::collections::HashMap;

const BLOCK: u64 = 64;

/// One step of the random interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    Allocate(u64),
    Retire(u64),
    Complete(u64),
}

fn op_strategy(blocks: u64) -> impl Strategy<Value = Op> {
    (0u8..8, 0..blocks).prop_map(|(kind, block)| {
        let addr = block * BLOCK + (u64::from(kind) * 9) % BLOCK; // vary offsets within the block
        match kind {
            // Allocation-heavy mix keeps the file near capacity, which is
            // where slot reuse happens.
            0..=4 => Op::Allocate(addr),
            5 | 6 => Op::Retire(addr),
            _ => Op::Complete(addr),
        }
    })
}

proptest! {
    #[test]
    fn fixed_slots_never_lose_or_duplicate_outstanding_misses(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
        capacity in 1usize..9,
        secondary in 0usize..5,
    ) {
        let mut file = MshrFile::new(capacity, secondary, BLOCK).unwrap();
        // The model: block base -> waiters, in allocation order.
        let mut model: HashMap<u64, Vec<ReqId>> = HashMap::new();
        let mut next_id = 0u64;

        for (step, &op) in ops.iter().enumerate() {
            match op {
                Op::Allocate(addr) => {
                    let id = ReqId(next_id);
                    next_id += 1;
                    let base = Addr(addr).block_base(BLOCK).0;
                    let outcome = file.allocate(Addr(addr), id);
                    let expected = match model.get(&base) {
                        Some(waiters) if waiters.len() >= 1 + secondary => MshrAllocation::Full,
                        Some(_) => MshrAllocation::Secondary,
                        None if model.len() >= capacity => MshrAllocation::Full,
                        None => MshrAllocation::Primary,
                    };
                    prop_assert_eq!(outcome, expected, "allocate({addr:#x}) at step {step}");
                    match outcome {
                        MshrAllocation::Primary => {
                            model.insert(base, vec![id]);
                        }
                        MshrAllocation::Secondary => {
                            model.get_mut(&base).expect("secondary merges into a live entry").push(id);
                        }
                        MshrAllocation::Full => {}
                    }
                }
                Op::Retire(addr) => {
                    let base = Addr(addr).block_base(BLOCK).0;
                    let expected = model.remove(&base).map(|w| w.len()).unwrap_or(0);
                    prop_assert_eq!(
                        file.retire(Addr(addr)),
                        expected,
                        "retire({addr:#x}) at step {step}"
                    );
                }
                Op::Complete(addr) => {
                    let base = Addr(addr).block_base(BLOCK).0;
                    let expected = model.remove(&base).unwrap_or_default();
                    prop_assert_eq!(
                        file.complete(Addr(addr)),
                        expected,
                        "complete({addr:#x}) at step {step}: waiters lost, duplicated or reordered"
                    );
                }
            }

            // Global invariants after every step.
            prop_assert_eq!(file.occupancy(), model.len());
            prop_assert_eq!(file.is_full(), model.len() >= capacity);
            for block in 0u64..12 {
                prop_assert_eq!(
                    file.is_pending(Addr(block * BLOCK)),
                    model.contains_key(&(block * BLOCK)),
                    "pending({block}) at step {step}"
                );
            }
        }

        // Drain everything: every outstanding miss is returned exactly once.
        let mut remaining: Vec<(u64, Vec<ReqId>)> = model.into_iter().collect();
        remaining.sort_by_key(|(base, _)| *base);
        for (base, waiters) in remaining {
            prop_assert_eq!(file.complete(Addr(base)), waiters);
        }
        prop_assert_eq!(file.occupancy(), 0);
        prop_assert!(!file.is_full() || capacity == 0);

        // Freed slots are immediately reusable up to the full capacity.
        for i in 0..capacity as u64 {
            prop_assert!(file.allocate(Addr(0x10_0000 + i * BLOCK), ReqId(u64::MAX - i)).is_primary());
        }
        prop_assert!(file.is_full());
    }
}
