//! Differential property test: the flat-lane [`CacheArray`] (packed tag
//! words + cold way metadata, DESIGN.md §10) must be behaviorally identical
//! to a straightforward reference model — nested `Vec`s of `Option<Line>`
//! with explicit recency stamps, the layout the pre-flattening implementation
//! used — over random interleavings of every public operation, for LRU, FIFO
//! and the deterministic Random replacement policy.

use lnuca_mem::{CacheArray, CacheGeometry, EvictedLine, Line, ReplacementPolicy};
use lnuca_types::Addr;
use proptest::prelude::*;

/// The obviously-correct model: one `Option`-per-way nested structure, with
/// victim selection delegated to the same `ReplacementPolicy` entry point.
struct ReferenceArray {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<Vec<RefWay>>,
    tick: u64,
    resident: usize,
}

#[derive(Clone, Copy)]
struct RefWay {
    line: Option<Line>,
    last_use: u64,
    inserted: u64,
}

impl ReferenceArray {
    fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        ReferenceArray {
            geometry,
            policy,
            sets: vec![
                vec![
                    RefWay {
                        line: None,
                        last_use: 0,
                        inserted: 0
                    };
                    geometry.ways()
                ];
                geometry.sets()
            ],
            tick: 0,
            resident: 0,
        }
    }

    fn set_of(&mut self, addr: Addr) -> (&mut Vec<RefWay>, Addr) {
        let index = self.geometry.set_index(addr);
        let base = addr.block_base(self.geometry.block_size());
        (&mut self.sets[index], base)
    }

    fn contains(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_index(addr)];
        let base = addr.block_base(self.geometry.block_size());
        set.iter().any(|w| w.line.map(|l| l.addr) == Some(base))
    }

    fn lookup(&mut self, addr: Addr) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let (set, base) = self.set_of(addr);
        for way in set.iter_mut() {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.last_use = tick;
                    return Some(line);
                }
            }
        }
        None
    }

    fn mark_dirty(&mut self, addr: Addr) -> bool {
        let (set, base) = self.set_of(addr);
        for way in set.iter_mut() {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty = true;
                    return true;
                }
            }
        }
        false
    }

    fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let policy = self.policy;
        let (set, base) = self.set_of(addr);
        for way in set.iter_mut() {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty |= dirty;
                    way.last_use = tick;
                    return None;
                }
            }
        }
        if let Some(way) = set.iter_mut().find(|w| w.line.is_none()) {
            way.line = Some(Line { addr: base, dirty });
            way.last_use = tick;
            way.inserted = tick;
            self.resident += 1;
            return None;
        }
        let victim_way =
            policy.choose_victim_from(set.iter().map(|w| (w.last_use, w.inserted)), tick);
        let way = &mut set[victim_way];
        let victim = way.line.expect("full set has a line in every way");
        way.line = Some(Line { addr: base, dirty });
        way.last_use = tick;
        way.inserted = tick;
        Some(EvictedLine {
            addr: victim.addr,
            dirty: victim.dirty,
        })
    }

    fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        let (set, base) = self.set_of(addr);
        for way in set.iter_mut() {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.line = None;
                    self.resident -= 1;
                    return Some(line);
                }
            }
        }
        None
    }

    fn has_free_way(&self, addr: Addr) -> bool {
        self.sets[self.geometry.set_index(addr)]
            .iter()
            .any(|w| w.line.is_none())
    }
}

/// One randomly chosen operation against both implementations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup(u64),
    Fill(u64, bool),
    MarkDirty(u64),
    Invalidate(u64),
    Probe(u64),
}

fn op_strategy(addr_space: u64) -> impl Strategy<Value = Op> {
    (0u8..5, 0..addr_space, any::<bool>()).prop_map(|(kind, addr, flag)| match kind {
        0 => Op::Lookup(addr),
        1 => Op::Fill(addr, flag),
        2 => Op::MarkDirty(addr),
        3 => Op::Invalidate(addr),
        _ => Op::Probe(addr),
    })
}

fn policies() -> Vec<ReplacementPolicy> {
    vec![
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ]
}

proptest! {
    #[test]
    fn flat_array_matches_the_reference_model(
        ops in proptest::collection::vec(op_strategy(0x2000), 1..300),
        policy in prop::sample::select(policies()),
    ) {
        // 1 KB, 4-way, 32 B blocks: 8 sets, small enough that random
        // addresses collide constantly and every eviction path fires.
        let geometry = CacheGeometry::new(1024, 4, 32).unwrap();
        let mut flat = CacheArray::new(geometry, policy);
        let mut reference = ReferenceArray::new(geometry, policy);

        for (step, &op) in ops.iter().enumerate() {
            match op {
                Op::Lookup(a) => prop_assert_eq!(
                    flat.lookup(Addr(a)), reference.lookup(Addr(a)),
                    "lookup({:#x}) diverged at step {}", a, step
                ),
                Op::Fill(a, dirty) => prop_assert_eq!(
                    flat.fill(Addr(a), dirty), reference.fill(Addr(a), dirty),
                    "fill({:#x}, {}) diverged at step {}", a, dirty, step
                ),
                Op::MarkDirty(a) => prop_assert_eq!(
                    flat.mark_dirty(Addr(a)), reference.mark_dirty(Addr(a)),
                    "mark_dirty({:#x}) diverged at step {}", a, step
                ),
                Op::Invalidate(a) => prop_assert_eq!(
                    flat.invalidate(Addr(a)), reference.invalidate(Addr(a)),
                    "invalidate({:#x}) diverged at step {}", a, step
                ),
                Op::Probe(a) => {
                    prop_assert_eq!(
                        flat.contains(Addr(a)), reference.contains(Addr(a)),
                        "contains({:#x}) diverged at step {}", a, step
                    );
                    prop_assert_eq!(
                        flat.has_free_way(Addr(a)), reference.has_free_way(Addr(a)),
                        "has_free_way({:#x}) diverged at step {}", a, step
                    );
                }
            }
            prop_assert_eq!(flat.resident(), reference.resident);
        }

        // Final residency contents agree exactly (order-insensitively).
        let mut flat_lines: Vec<Line> = flat.iter().collect();
        let mut reference_lines: Vec<Line> = reference
            .sets
            .iter()
            .flat_map(|set| set.iter().filter_map(|w| w.line))
            .collect();
        flat_lines.sort_by_key(|l| l.addr.0);
        reference_lines.sort_by_key(|l| l.addr.0);
        prop_assert_eq!(flat_lines, reference_lines);
    }
}
