//! The tag/state array of a set-associative cache, stored as flat parallel
//! lanes for branch-light lookups.

use crate::slab::TagSlab;
use crate::{CacheGeometry, ReplacementPolicy};
use lnuca_types::Addr;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Metadata stored with every resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line {
    /// Block-aligned base address of the cached block.
    pub addr: Addr,
    /// Whether the line holds modified data that must be written back.
    pub dirty: bool,
}

/// A line that was evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// Block-aligned base address of the evicted block.
    pub addr: Addr,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

/// Per-way state that is *not* scanned during a lookup: the dirty bit and
/// the replacement metadata. Kept in a lane parallel to the packed tag
/// array so the tag scan touches nothing but dense `u64` words.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Way {
    dirty: bool,
    last_use: u64,
    inserted: u64,
}

/// Sentinel tag marking an empty way. Real tags are `block_index >> set_shift`
/// and can only reach `u64::MAX` for a degenerate 1-set, 1-byte-block
/// geometry, which [`CacheArray::new`] debug-asserts against in `fill`.
const EMPTY_TAG: u64 = u64::MAX;

/// The packed tag lane of one [`CacheArray`], in one of two storage modes:
///
/// * **Owned** — a private boxed slice, the historical layout; used
///   whenever the array is constructed outside a [`TagSlab::scoped`]
///   region (every per-run code path).
/// * **Slab** — a `len`-word window starting at `start` into a chunk of
///   the thread's current [`TagSlab`], so the tag lanes of a whole
///   simulation batch sit side by side in a few contiguous chunks
///   (DESIGN.md §13). The words are atomics purely for safe shared
///   ownership of the chunk; every access is relaxed (a plain load/store)
///   and no two arrays overlap.
///
/// Both modes index identically; each accessor matches the mode once and
/// then runs the same dense scan.
#[derive(Debug)]
enum TagLane {
    Owned(Box<[u64]>),
    Slab {
        words: Arc<[AtomicU64]>,
        start: usize,
        len: usize,
    },
}

impl TagLane {
    /// A `len`-word lane of empty-way sentinels, carved from the thread's
    /// current [`TagSlab`] if one is installed and privately boxed
    /// otherwise.
    fn new(len: usize) -> TagLane {
        match TagSlab::current() {
            Some(slab) => {
                let (words, start) = slab.alloc(len);
                TagLane::Slab { words, start, len }
            }
            None => TagLane::Owned(vec![EMPTY_TAG; len].into_boxed_slice()),
        }
    }

    fn len(&self) -> usize {
        match self {
            TagLane::Owned(tags) => tags.len(),
            TagLane::Slab { len, .. } => *len,
        }
    }

    #[inline]
    fn get(&self, index: usize) -> u64 {
        match self {
            TagLane::Owned(tags) => tags[index],
            TagLane::Slab { words, start, len } => {
                debug_assert!(index < *len);
                words[start + index].load(Ordering::Relaxed)
            }
        }
    }

    #[inline]
    fn set(&mut self, index: usize, tag: u64) {
        match self {
            TagLane::Owned(tags) => tags[index] = tag,
            TagLane::Slab { words, start, len } => {
                debug_assert!(index < *len);
                words[*start + index].store(tag, Ordering::Relaxed);
            }
        }
    }

    /// Scans the `assoc` ways starting at `base`; returns the way offset
    /// holding `needle`.
    #[inline]
    fn position(&self, base: usize, assoc: usize, needle: u64) -> Option<usize> {
        match self {
            TagLane::Owned(tags) => tags[base..base + assoc].iter().position(|&t| t == needle),
            TagLane::Slab { words, start, len } => {
                debug_assert!(base + assoc <= *len);
                words[start + base..start + base + assoc]
                    .iter()
                    .position(|w| w.load(Ordering::Relaxed) == needle)
            }
        }
    }
}

/// Cloning detaches from any slab: the clone gets a private owned lane
/// with the same contents, so clones never alias batch storage.
impl Clone for TagLane {
    fn clone(&self) -> Self {
        match self {
            TagLane::Owned(tags) => TagLane::Owned(tags.clone()),
            TagLane::Slab { .. } => {
                TagLane::Owned((0..self.len()).map(|i| self.get(i)).collect())
            }
        }
    }
}

/// A set-associative tag/state array.
///
/// `CacheArray` models only residency, recency and dirtiness — timing lives
/// in [`crate::ConventionalCache`] and in the L-NUCA tile model. The array is
/// the piece shared by every cache-like structure in the workspace
/// (conventional caches, L-NUCA tiles, D-NUCA banks).
///
/// # Storage layout (DESIGN.md §10)
///
/// Ways are stored flat, indexed by `set * ways + way`:
///
/// * `tags` — one packed `u64` tag per way (a sentinel word marks an
///   empty way). A lookup is a linear scan over the set's `ways`-long slice of
///   this lane: dense words, no `Option` discriminant, no pointer chasing.
/// * `ways` — the parallel cold lane (dirty bit + replacement metadata),
///   touched only on a hit or when choosing a victim.
///
/// Set indexing is shift/mask (`sets` is always a power of two), so the hot
/// path performs no division.
///
/// When the array is constructed inside a [`TagSlab::scoped`] region the
/// tag lane is carved out of the batch's shared slab instead of privately
/// boxed, packing the lanes of all batch members contiguously
/// (DESIGN.md §13); behaviour is bit-identical in both modes.
///
/// # Example
///
/// ```
/// use lnuca_mem::{CacheArray, CacheGeometry, ReplacementPolicy};
/// use lnuca_types::Addr;
///
/// let geometry = CacheGeometry::new(8 * 1024, 2, 32)?;
/// let mut array = CacheArray::new(geometry, ReplacementPolicy::Lru);
/// assert!(array.lookup(Addr(0x40)).is_none());
/// let evicted = array.fill(Addr(0x40), false);
/// assert!(evicted.is_none());
/// assert!(array.lookup(Addr(0x5f)).is_some()); // same 32-byte block
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheArray {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    /// Packed tag lane, `sets * ways` entries, [`EMPTY_TAG`] = empty.
    tags: TagLane,
    /// Cold per-way lane parallel to `tags`.
    ways: Box<[Way]>,
    /// `log2(block_size)`: shifts an address down to its block index.
    block_shift: u32,
    /// `log2(sets)`: shifts a block index down to its tag.
    set_shift: u32,
    /// `sets - 1`: masks a block index to its set index.
    set_mask: u64,
    /// Ways per set (cached out of `geometry` for the hot path).
    assoc: usize,
    tick: u64,
    resident: usize,
}

impl CacheArray {
    /// Creates an empty array with the given geometry and replacement policy.
    #[must_use]
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let lines = geometry.lines();
        CacheArray {
            geometry,
            policy,
            tags: TagLane::new(lines),
            ways: vec![
                Way {
                    dirty: false,
                    last_use: 0,
                    inserted: 0,
                };
                lines
            ]
            .into_boxed_slice(),
            block_shift: geometry.block_size().trailing_zeros(),
            set_shift: (geometry.sets() as u64).trailing_zeros(),
            set_mask: geometry.sets() as u64 - 1,
            assoc: geometry.ways(),
            tick: 0,
            resident: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Splits an address into `(base way index of its set, tag)`.
    #[inline]
    fn slot(&self, addr: Addr) -> (usize, u64) {
        let block_index = addr.0 >> self.block_shift;
        let set = (block_index & self.set_mask) as usize;
        (set * self.assoc, block_index >> self.set_shift)
    }

    /// Reconstructs the block base address stored in way `index`.
    #[inline]
    fn addr_of(&self, index: usize) -> Addr {
        let set = (index / self.assoc) as u64;
        Addr(((self.tags.get(index) << self.set_shift) | set) << self.block_shift)
    }

    /// Scans the set containing `addr`; returns the matching way index.
    #[inline]
    fn find(&self, addr: Addr) -> Option<usize> {
        let (base, tag) = self.slot(addr);
        self.tags.position(base, self.assoc, tag).map(|w| base + w)
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// updating recency state.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Looks up the block containing `addr`; on a hit the line's recency is
    /// refreshed and a copy of its metadata is returned.
    pub fn lookup(&mut self, addr: Addr) -> Option<Line> {
        self.tick += 1;
        let index = self.find(addr)?;
        self.ways[index].last_use = self.tick;
        Some(Line {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        })
    }

    /// Marks the block containing `addr` dirty if it is resident. Returns
    /// `true` if the block was found.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        match self.find(addr) {
            Some(index) => {
                self.ways[index].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Inserts the block containing `addr` (with the given dirty state),
    /// evicting a victim chosen by the replacement policy if the set is full.
    ///
    /// If the block is already resident its dirty bit is OR-ed with `dirty`
    /// and no eviction occurs.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let (base, tag) = self.slot(addr);
        debug_assert_ne!(tag, EMPTY_TAG, "tag collides with the empty sentinel");

        // Already resident: refresh and merge dirtiness.
        if let Some(w) = self.tags.position(base, self.assoc, tag) {
            let way = &mut self.ways[base + w];
            way.dirty |= dirty;
            way.last_use = tick;
            return None;
        }

        // Free way available.
        if let Some(w) = self.tags.position(base, self.assoc, EMPTY_TAG) {
            self.tags.set(base + w, tag);
            self.ways[base + w] = Way {
                dirty,
                last_use: tick,
                inserted: tick,
            };
            self.resident += 1;
            return None;
        }

        // Evict a victim (streaming the way metadata keeps this hot path
        // free of temporary allocations).
        let victim_way = self.policy.choose_victim_from(
            self.ways[base..base + self.assoc]
                .iter()
                .map(|w| (w.last_use, w.inserted)),
            tick,
        );
        let index = base + victim_way;
        let victim = EvictedLine {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        };
        self.tags.set(index, tag);
        self.ways[index] = Way {
            dirty,
            last_use: tick,
            inserted: tick,
        };
        Some(victim)
    }

    /// Removes the block containing `addr` from the array, returning its
    /// metadata if it was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        let index = self.find(addr)?;
        let line = Line {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        };
        self.tags.set(index, EMPTY_TAG);
        self.ways[index].dirty = false;
        self.resident -= 1;
        Some(line)
    }

    /// Returns `true` if the set that `addr` maps to has at least one empty
    /// way.
    #[must_use]
    pub fn has_free_way(&self, addr: Addr) -> bool {
        let (base, _) = self.slot(addr);
        self.tags.position(base, self.assoc, EMPTY_TAG).is_some()
    }

    /// Iterates over all resident lines (in no particular order).
    ///
    /// Lines are yielded by value: the flat layout stores no `Line` structs
    /// to hand out references to.
    pub fn iter(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.tags.len()).filter_map(|index| {
            (self.tags.get(index) != EMPTY_TAG).then(|| Line {
                addr: self.addr_of(index),
                dirty: self.ways[index].dirty,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::ConfigError;
    use proptest::prelude::*;

    fn small_array() -> CacheArray {
        let g = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets x 2 ways
        CacheArray::new(g, ReplacementPolicy::Lru)
    }

    #[test]
    fn fill_then_lookup_hits_whole_block() {
        let mut a = small_array();
        assert!(a.fill(Addr(0x100), false).is_none());
        assert!(a.lookup(Addr(0x11F)).is_some());
        assert!(a.lookup(Addr(0x120)).is_none());
        assert_eq!(a.resident(), 1);
    }

    #[test]
    fn refilling_resident_block_does_not_duplicate() {
        let mut a = small_array();
        a.fill(Addr(0x100), false);
        a.fill(Addr(0x100), true);
        assert_eq!(a.resident(), 1);
        assert!(a.lookup(Addr(0x100)).unwrap().dirty, "dirtiness merges on refill");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut a = small_array();
        // Set index = (addr >> 5) % 4. Choose three blocks in set 0.
        let b0 = Addr(0x000);
        let b1 = Addr(0x080);
        let b2 = Addr(0x100);
        a.fill(b0, false);
        a.fill(b1, false);
        a.lookup(b0); // b1 is now LRU
        let evicted = a.fill(b2, false).expect("set is full");
        assert_eq!(evicted.addr, b1);
        assert!(a.contains(b0));
        assert!(a.contains(b2));
        assert!(!a.contains(b1));
    }

    #[test]
    fn dirty_victims_are_reported_dirty() {
        let mut a = small_array();
        a.fill(Addr(0x000), true);
        a.fill(Addr(0x080), false);
        a.lookup(Addr(0x080));
        // 0x000 is LRU and dirty.
        let evicted = a.fill(Addr(0x100), false).unwrap();
        assert_eq!(evicted.addr, Addr(0x000));
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_affects_resident_blocks() {
        let mut a = small_array();
        assert!(!a.mark_dirty(Addr(0x40)));
        a.fill(Addr(0x40), false);
        assert!(a.mark_dirty(Addr(0x5F)));
        assert!(a.lookup(Addr(0x40)).unwrap().dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut a = small_array();
        a.fill(Addr(0x40), true);
        let line = a.invalidate(Addr(0x40)).unwrap();
        assert!(line.dirty);
        assert!(!a.contains(Addr(0x40)));
        assert_eq!(a.resident(), 0);
        assert!(a.invalidate(Addr(0x40)).is_none());
    }

    #[test]
    fn has_free_way_tracks_set_occupancy() {
        let mut a = small_array();
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x000), false);
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x080), false);
        assert!(!a.has_free_way(Addr(0x000)));
        assert!(a.has_free_way(Addr(0x020)), "other sets unaffected");
    }

    #[test]
    fn iter_visits_every_resident_line() -> Result<(), ConfigError> {
        let g = CacheGeometry::new(512, 4, 32)?;
        let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
        for i in 0..8u64 {
            a.fill(Addr(i * 32), false);
        }
        assert_eq!(a.iter().count(), 8);
        Ok(())
    }

    #[test]
    fn lookup_and_iter_reconstruct_block_base_addresses() {
        let g = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
        let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
        let addr = Addr(0xABCD_EF13);
        a.fill(addr, true);
        let line = a.lookup(addr).expect("just filled");
        assert_eq!(line.addr, addr.block_base(32));
        assert!(line.dirty);
        let from_iter: Vec<Line> = a.iter().collect();
        assert_eq!(from_iter, vec![line]);
    }

    #[test]
    fn slab_mode_clone_detaches_into_owned_storage() {
        let slab = TagSlab::new();
        let mut original = slab.scoped(small_array);
        original.fill(Addr(0x100), true);
        let mut clone = original.clone();
        assert!(matches!(clone.tags, TagLane::Owned(_)), "clones never alias the slab");
        assert!(clone.lookup(Addr(0x100)).unwrap().dirty);
        clone.fill(Addr(0x180), false);
        assert!(!original.contains(Addr(0x180)), "the clone's fills stay private");
    }

    proptest! {
        #[test]
        fn slab_mode_is_bit_identical_to_owned_mode(
            addrs in proptest::collection::vec(0u64..0x4000, 0..200),
        ) {
            let g = CacheGeometry::new(1024, 2, 32).unwrap();
            let mut owned = CacheArray::new(g, ReplacementPolicy::Lru);
            let slab = TagSlab::with_chunk_words(64);
            // Two slab arrays interleaved in one arena; the second is a
            // decoy exercised with shifted addresses to prove isolation.
            let (mut packed, mut decoy) = slab.scoped(|| {
                (
                    CacheArray::new(g, ReplacementPolicy::Lru),
                    CacheArray::new(g, ReplacementPolicy::Lru),
                )
            });
            for &addr in &addrs {
                let dirty = addr % 3 == 0;
                prop_assert_eq!(owned.fill(Addr(addr), dirty), packed.fill(Addr(addr), dirty));
                decoy.fill(Addr(addr ^ 0x1AC0), !dirty);
                prop_assert_eq!(owned.lookup(Addr(addr)), packed.lookup(Addr(addr)));
            }
            prop_assert_eq!(owned.resident(), packed.resident());
            let owned_lines: Vec<Line> = owned.iter().collect();
            let packed_lines: Vec<Line> = packed.iter().collect();
            prop_assert_eq!(owned_lines, packed_lines);
        }

        #[test]
        fn resident_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..0x4000, 0..200)) {
            let g = CacheGeometry::new(1024, 2, 32).unwrap();
            let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
            for addr in addrs {
                a.fill(Addr(addr), addr % 3 == 0);
                prop_assert!(a.resident() <= a.geometry().lines());
                prop_assert_eq!(a.iter().count(), a.resident());
            }
        }

        #[test]
        fn a_filled_block_is_resident_until_evicted_or_invalidated(
            addrs in proptest::collection::vec(0u64..0x2000, 1..100),
            policy in prop::sample::select(vec![ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]),
        ) {
            let g = CacheGeometry::new(1024, 4, 32).unwrap();
            let mut a = CacheArray::new(g, policy);
            for &addr in &addrs {
                let evicted = a.fill(Addr(addr), false);
                // The block just filled must be resident.
                prop_assert!(a.contains(Addr(addr)));
                // The evicted block (if any, and if distinct) must be gone.
                if let Some(e) = evicted {
                    if !e.addr.same_block(Addr(addr), 32) {
                        prop_assert!(!a.contains(e.addr));
                    }
                }
            }
        }
    }
}
