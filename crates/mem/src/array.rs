//! The tag/state array of a set-associative cache, stored as flat parallel
//! lanes for branch-light lookups.

use crate::{CacheGeometry, ReplacementPolicy};
use lnuca_types::Addr;
use serde::{Deserialize, Serialize};

/// Metadata stored with every resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line {
    /// Block-aligned base address of the cached block.
    pub addr: Addr,
    /// Whether the line holds modified data that must be written back.
    pub dirty: bool,
}

/// A line that was evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// Block-aligned base address of the evicted block.
    pub addr: Addr,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

/// Per-way state that is *not* scanned during a lookup: the dirty bit and
/// the replacement metadata. Kept in a lane parallel to the packed tag
/// array so the tag scan touches nothing but dense `u64` words.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Way {
    dirty: bool,
    last_use: u64,
    inserted: u64,
}

/// Sentinel tag marking an empty way. Real tags are `block_index >> set_shift`
/// and can only reach `u64::MAX` for a degenerate 1-set, 1-byte-block
/// geometry, which [`CacheArray::new`] debug-asserts against in `fill`.
const EMPTY_TAG: u64 = u64::MAX;

/// A set-associative tag/state array.
///
/// `CacheArray` models only residency, recency and dirtiness — timing lives
/// in [`crate::ConventionalCache`] and in the L-NUCA tile model. The array is
/// the piece shared by every cache-like structure in the workspace
/// (conventional caches, L-NUCA tiles, D-NUCA banks).
///
/// # Storage layout (DESIGN.md §10)
///
/// Ways are stored flat, indexed by `set * ways + way`:
///
/// * `tags` — one packed `u64` tag per way (a sentinel word marks an
///   empty way). A lookup is a linear scan over the set's `ways`-long slice of
///   this lane: dense words, no `Option` discriminant, no pointer chasing.
/// * `ways` — the parallel cold lane (dirty bit + replacement metadata),
///   touched only on a hit or when choosing a victim.
///
/// Set indexing is shift/mask (`sets` is always a power of two), so the hot
/// path performs no division.
///
/// # Example
///
/// ```
/// use lnuca_mem::{CacheArray, CacheGeometry, ReplacementPolicy};
/// use lnuca_types::Addr;
///
/// let geometry = CacheGeometry::new(8 * 1024, 2, 32)?;
/// let mut array = CacheArray::new(geometry, ReplacementPolicy::Lru);
/// assert!(array.lookup(Addr(0x40)).is_none());
/// let evicted = array.fill(Addr(0x40), false);
/// assert!(evicted.is_none());
/// assert!(array.lookup(Addr(0x5f)).is_some()); // same 32-byte block
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheArray {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    /// Packed tag lane, `sets * ways` entries, [`EMPTY_TAG`] = empty.
    tags: Box<[u64]>,
    /// Cold per-way lane parallel to `tags`.
    ways: Box<[Way]>,
    /// `log2(block_size)`: shifts an address down to its block index.
    block_shift: u32,
    /// `log2(sets)`: shifts a block index down to its tag.
    set_shift: u32,
    /// `sets - 1`: masks a block index to its set index.
    set_mask: u64,
    /// Ways per set (cached out of `geometry` for the hot path).
    assoc: usize,
    tick: u64,
    resident: usize,
}

impl CacheArray {
    /// Creates an empty array with the given geometry and replacement policy.
    #[must_use]
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let lines = geometry.lines();
        CacheArray {
            geometry,
            policy,
            tags: vec![EMPTY_TAG; lines].into_boxed_slice(),
            ways: vec![
                Way {
                    dirty: false,
                    last_use: 0,
                    inserted: 0,
                };
                lines
            ]
            .into_boxed_slice(),
            block_shift: geometry.block_size().trailing_zeros(),
            set_shift: (geometry.sets() as u64).trailing_zeros(),
            set_mask: geometry.sets() as u64 - 1,
            assoc: geometry.ways(),
            tick: 0,
            resident: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Splits an address into `(base way index of its set, tag)`.
    #[inline]
    fn slot(&self, addr: Addr) -> (usize, u64) {
        let block_index = addr.0 >> self.block_shift;
        let set = (block_index & self.set_mask) as usize;
        (set * self.assoc, block_index >> self.set_shift)
    }

    /// Reconstructs the block base address stored in way `index`.
    #[inline]
    fn addr_of(&self, index: usize) -> Addr {
        let set = (index / self.assoc) as u64;
        Addr(((self.tags[index] << self.set_shift) | set) << self.block_shift)
    }

    /// Scans the set containing `addr`; returns the matching way index.
    #[inline]
    fn find(&self, addr: Addr) -> Option<usize> {
        let (base, tag) = self.slot(addr);
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
            .map(|w| base + w)
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// updating recency state.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Looks up the block containing `addr`; on a hit the line's recency is
    /// refreshed and a copy of its metadata is returned.
    pub fn lookup(&mut self, addr: Addr) -> Option<Line> {
        self.tick += 1;
        let index = self.find(addr)?;
        self.ways[index].last_use = self.tick;
        Some(Line {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        })
    }

    /// Marks the block containing `addr` dirty if it is resident. Returns
    /// `true` if the block was found.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        match self.find(addr) {
            Some(index) => {
                self.ways[index].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Inserts the block containing `addr` (with the given dirty state),
    /// evicting a victim chosen by the replacement policy if the set is full.
    ///
    /// If the block is already resident its dirty bit is OR-ed with `dirty`
    /// and no eviction occurs.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let (base, tag) = self.slot(addr);
        debug_assert_ne!(tag, EMPTY_TAG, "tag collides with the empty sentinel");
        let set = &self.tags[base..base + self.assoc];

        // Already resident: refresh and merge dirtiness.
        if let Some(w) = set.iter().position(|&t| t == tag) {
            let way = &mut self.ways[base + w];
            way.dirty |= dirty;
            way.last_use = tick;
            return None;
        }

        // Free way available.
        if let Some(w) = set.iter().position(|&t| t == EMPTY_TAG) {
            self.tags[base + w] = tag;
            self.ways[base + w] = Way {
                dirty,
                last_use: tick,
                inserted: tick,
            };
            self.resident += 1;
            return None;
        }

        // Evict a victim (streaming the way metadata keeps this hot path
        // free of temporary allocations).
        let victim_way = self.policy.choose_victim_from(
            self.ways[base..base + self.assoc]
                .iter()
                .map(|w| (w.last_use, w.inserted)),
            tick,
        );
        let index = base + victim_way;
        let victim = EvictedLine {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        };
        self.tags[index] = tag;
        self.ways[index] = Way {
            dirty,
            last_use: tick,
            inserted: tick,
        };
        Some(victim)
    }

    /// Removes the block containing `addr` from the array, returning its
    /// metadata if it was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        let index = self.find(addr)?;
        let line = Line {
            addr: self.addr_of(index),
            dirty: self.ways[index].dirty,
        };
        self.tags[index] = EMPTY_TAG;
        self.ways[index].dirty = false;
        self.resident -= 1;
        Some(line)
    }

    /// Returns `true` if the set that `addr` maps to has at least one empty
    /// way.
    #[must_use]
    pub fn has_free_way(&self, addr: Addr) -> bool {
        let (base, _) = self.slot(addr);
        self.tags[base..base + self.assoc]
            .iter()
            .any(|&t| t == EMPTY_TAG)
    }

    /// Iterates over all resident lines (in no particular order).
    ///
    /// Lines are yielded by value: the flat layout stores no `Line` structs
    /// to hand out references to.
    pub fn iter(&self) -> impl Iterator<Item = Line> + '_ {
        self.tags.iter().enumerate().filter_map(|(index, &tag)| {
            (tag != EMPTY_TAG).then(|| Line {
                addr: self.addr_of(index),
                dirty: self.ways[index].dirty,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::ConfigError;
    use proptest::prelude::*;

    fn small_array() -> CacheArray {
        let g = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets x 2 ways
        CacheArray::new(g, ReplacementPolicy::Lru)
    }

    #[test]
    fn fill_then_lookup_hits_whole_block() {
        let mut a = small_array();
        assert!(a.fill(Addr(0x100), false).is_none());
        assert!(a.lookup(Addr(0x11F)).is_some());
        assert!(a.lookup(Addr(0x120)).is_none());
        assert_eq!(a.resident(), 1);
    }

    #[test]
    fn refilling_resident_block_does_not_duplicate() {
        let mut a = small_array();
        a.fill(Addr(0x100), false);
        a.fill(Addr(0x100), true);
        assert_eq!(a.resident(), 1);
        assert!(a.lookup(Addr(0x100)).unwrap().dirty, "dirtiness merges on refill");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut a = small_array();
        // Set index = (addr >> 5) % 4. Choose three blocks in set 0.
        let b0 = Addr(0x000);
        let b1 = Addr(0x080);
        let b2 = Addr(0x100);
        a.fill(b0, false);
        a.fill(b1, false);
        a.lookup(b0); // b1 is now LRU
        let evicted = a.fill(b2, false).expect("set is full");
        assert_eq!(evicted.addr, b1);
        assert!(a.contains(b0));
        assert!(a.contains(b2));
        assert!(!a.contains(b1));
    }

    #[test]
    fn dirty_victims_are_reported_dirty() {
        let mut a = small_array();
        a.fill(Addr(0x000), true);
        a.fill(Addr(0x080), false);
        a.lookup(Addr(0x080));
        // 0x000 is LRU and dirty.
        let evicted = a.fill(Addr(0x100), false).unwrap();
        assert_eq!(evicted.addr, Addr(0x000));
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_affects_resident_blocks() {
        let mut a = small_array();
        assert!(!a.mark_dirty(Addr(0x40)));
        a.fill(Addr(0x40), false);
        assert!(a.mark_dirty(Addr(0x5F)));
        assert!(a.lookup(Addr(0x40)).unwrap().dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut a = small_array();
        a.fill(Addr(0x40), true);
        let line = a.invalidate(Addr(0x40)).unwrap();
        assert!(line.dirty);
        assert!(!a.contains(Addr(0x40)));
        assert_eq!(a.resident(), 0);
        assert!(a.invalidate(Addr(0x40)).is_none());
    }

    #[test]
    fn has_free_way_tracks_set_occupancy() {
        let mut a = small_array();
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x000), false);
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x080), false);
        assert!(!a.has_free_way(Addr(0x000)));
        assert!(a.has_free_way(Addr(0x020)), "other sets unaffected");
    }

    #[test]
    fn iter_visits_every_resident_line() -> Result<(), ConfigError> {
        let g = CacheGeometry::new(512, 4, 32)?;
        let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
        for i in 0..8u64 {
            a.fill(Addr(i * 32), false);
        }
        assert_eq!(a.iter().count(), 8);
        Ok(())
    }

    #[test]
    fn lookup_and_iter_reconstruct_block_base_addresses() {
        let g = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
        let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
        let addr = Addr(0xABCD_EF13);
        a.fill(addr, true);
        let line = a.lookup(addr).expect("just filled");
        assert_eq!(line.addr, addr.block_base(32));
        assert!(line.dirty);
        let from_iter: Vec<Line> = a.iter().collect();
        assert_eq!(from_iter, vec![line]);
    }

    proptest! {
        #[test]
        fn resident_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..0x4000, 0..200)) {
            let g = CacheGeometry::new(1024, 2, 32).unwrap();
            let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
            for addr in addrs {
                a.fill(Addr(addr), addr % 3 == 0);
                prop_assert!(a.resident() <= a.geometry().lines());
                prop_assert_eq!(a.iter().count(), a.resident());
            }
        }

        #[test]
        fn a_filled_block_is_resident_until_evicted_or_invalidated(
            addrs in proptest::collection::vec(0u64..0x2000, 1..100),
            policy in prop::sample::select(vec![ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]),
        ) {
            let g = CacheGeometry::new(1024, 4, 32).unwrap();
            let mut a = CacheArray::new(g, policy);
            for &addr in &addrs {
                let evicted = a.fill(Addr(addr), false);
                // The block just filled must be resident.
                prop_assert!(a.contains(Addr(addr)));
                // The evicted block (if any, and if distinct) must be gone.
                if let Some(e) = evicted {
                    if !e.addr.same_block(Addr(addr), 32) {
                        prop_assert!(!a.contains(e.addr));
                    }
                }
            }
        }
    }
}
