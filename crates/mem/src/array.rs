//! The tag/state array of a set-associative cache.

use crate::{CacheGeometry, ReplacementPolicy};
use lnuca_types::Addr;
use serde::{Deserialize, Serialize};

/// Metadata stored with every resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line {
    /// Block-aligned base address of the cached block.
    pub addr: Addr,
    /// Whether the line holds modified data that must be written back.
    pub dirty: bool,
}

/// A line that was evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine {
    /// Block-aligned base address of the evicted block.
    pub addr: Addr,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Way {
    line: Option<Line>,
    last_use: u64,
    inserted: u64,
}

/// A set-associative tag/state array.
///
/// `CacheArray` models only residency, recency and dirtiness — timing lives
/// in [`crate::ConventionalCache`] and in the L-NUCA tile model. The array is
/// the piece shared by every cache-like structure in the workspace
/// (conventional caches, L-NUCA tiles, D-NUCA banks).
///
/// # Example
///
/// ```
/// use lnuca_mem::{CacheArray, CacheGeometry, ReplacementPolicy};
/// use lnuca_types::Addr;
///
/// let geometry = CacheGeometry::new(8 * 1024, 2, 32)?;
/// let mut array = CacheArray::new(geometry, ReplacementPolicy::Lru);
/// assert!(array.lookup(Addr(0x40)).is_none());
/// let evicted = array.fill(Addr(0x40), false);
/// assert!(evicted.is_none());
/// assert!(array.lookup(Addr(0x5f)).is_some()); // same 32-byte block
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheArray {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Way>>,
    tick: u64,
    resident: usize,
}

impl CacheArray {
    /// Creates an empty array with the given geometry and replacement policy.
    #[must_use]
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sets = (0..geometry.sets())
            .map(|_| {
                (0..geometry.ways())
                    .map(|_| Way {
                        line: None,
                        last_use: 0,
                        inserted: 0,
                    })
                    .collect()
            })
            .collect();
        CacheArray {
            geometry,
            policy,
            sets,
            tick: 0,
            resident: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// updating recency state.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_index(addr)];
        let base = addr.block_base(self.geometry.block_size());
        set.iter().any(|w| w.line.map(|l| l.addr) == Some(base))
    }

    /// Looks up the block containing `addr`; on a hit the line's recency is
    /// refreshed and a copy of its metadata is returned.
    pub fn lookup(&mut self, addr: Addr) -> Option<Line> {
        self.tick += 1;
        let set_index = self.geometry.set_index(addr);
        let base = addr.block_base(self.geometry.block_size());
        let tick = self.tick;
        let set = &mut self.sets[set_index];
        for way in set.iter_mut() {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.last_use = tick;
                    return Some(line);
                }
            }
        }
        None
    }

    /// Marks the block containing `addr` dirty if it is resident. Returns
    /// `true` if the block was found.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let set_index = self.geometry.set_index(addr);
        let base = addr.block_base(self.geometry.block_size());
        for way in &mut self.sets[set_index] {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty = true;
                    return true;
                }
            }
        }
        false
    }

    /// Inserts the block containing `addr` (with the given dirty state),
    /// evicting a victim chosen by the replacement policy if the set is full.
    ///
    /// If the block is already resident its dirty bit is OR-ed with `dirty`
    /// and no eviction occurs.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let set_index = self.geometry.set_index(addr);
        let base = addr.block_base(self.geometry.block_size());

        // Already resident: refresh and merge dirtiness.
        for way in &mut self.sets[set_index] {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty |= dirty;
                    way.last_use = tick;
                    return None;
                }
            }
        }

        // Free way available.
        if let Some(way) = self.sets[set_index].iter_mut().find(|w| w.line.is_none()) {
            way.line = Some(Line { addr: base, dirty });
            way.last_use = tick;
            way.inserted = tick;
            self.resident += 1;
            return None;
        }

        // Evict a victim (streaming the way metadata keeps this hot path
        // free of temporary allocations).
        let victim_way = self
            .policy
            .choose_victim_from(self.sets[set_index].iter().map(|w| (w.last_use, w.inserted)), tick);
        let way = &mut self.sets[set_index][victim_way];
        let victim = way.line.expect("full set has a line in every way");
        way.line = Some(Line { addr: base, dirty });
        way.last_use = tick;
        way.inserted = tick;
        Some(EvictedLine {
            addr: victim.addr,
            dirty: victim.dirty,
        })
    }

    /// Removes the block containing `addr` from the array, returning its
    /// metadata if it was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        let set_index = self.geometry.set_index(addr);
        let base = addr.block_base(self.geometry.block_size());
        for way in &mut self.sets[set_index] {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.line = None;
                    self.resident -= 1;
                    return Some(line);
                }
            }
        }
        None
    }

    /// Returns `true` if the set that `addr` maps to has at least one empty
    /// way.
    #[must_use]
    pub fn has_free_way(&self, addr: Addr) -> bool {
        let set = &self.sets[self.geometry.set_index(addr)];
        set.iter().any(|w| w.line.is_none())
    }

    /// Iterates over all resident lines (in no particular order).
    pub fn iter(&self) -> impl Iterator<Item = &Line> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.iter().filter_map(|w| w.line.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::ConfigError;
    use proptest::prelude::*;

    fn small_array() -> CacheArray {
        let g = CacheGeometry::new(256, 2, 32).unwrap(); // 4 sets x 2 ways
        CacheArray::new(g, ReplacementPolicy::Lru)
    }

    #[test]
    fn fill_then_lookup_hits_whole_block() {
        let mut a = small_array();
        assert!(a.fill(Addr(0x100), false).is_none());
        assert!(a.lookup(Addr(0x11F)).is_some());
        assert!(a.lookup(Addr(0x120)).is_none());
        assert_eq!(a.resident(), 1);
    }

    #[test]
    fn refilling_resident_block_does_not_duplicate() {
        let mut a = small_array();
        a.fill(Addr(0x100), false);
        a.fill(Addr(0x100), true);
        assert_eq!(a.resident(), 1);
        assert!(a.lookup(Addr(0x100)).unwrap().dirty, "dirtiness merges on refill");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut a = small_array();
        // Set index = (addr >> 5) % 4. Choose three blocks in set 0.
        let b0 = Addr(0x000);
        let b1 = Addr(0x080);
        let b2 = Addr(0x100);
        a.fill(b0, false);
        a.fill(b1, false);
        a.lookup(b0); // b1 is now LRU
        let evicted = a.fill(b2, false).expect("set is full");
        assert_eq!(evicted.addr, b1);
        assert!(a.contains(b0));
        assert!(a.contains(b2));
        assert!(!a.contains(b1));
    }

    #[test]
    fn dirty_victims_are_reported_dirty() {
        let mut a = small_array();
        a.fill(Addr(0x000), true);
        a.fill(Addr(0x080), false);
        a.lookup(Addr(0x080));
        // 0x000 is LRU and dirty.
        let evicted = a.fill(Addr(0x100), false).unwrap();
        assert_eq!(evicted.addr, Addr(0x000));
        assert!(evicted.dirty);
    }

    #[test]
    fn mark_dirty_only_affects_resident_blocks() {
        let mut a = small_array();
        assert!(!a.mark_dirty(Addr(0x40)));
        a.fill(Addr(0x40), false);
        assert!(a.mark_dirty(Addr(0x5F)));
        assert!(a.lookup(Addr(0x40)).unwrap().dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut a = small_array();
        a.fill(Addr(0x40), true);
        let line = a.invalidate(Addr(0x40)).unwrap();
        assert!(line.dirty);
        assert!(!a.contains(Addr(0x40)));
        assert_eq!(a.resident(), 0);
        assert!(a.invalidate(Addr(0x40)).is_none());
    }

    #[test]
    fn has_free_way_tracks_set_occupancy() {
        let mut a = small_array();
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x000), false);
        assert!(a.has_free_way(Addr(0x000)));
        a.fill(Addr(0x080), false);
        assert!(!a.has_free_way(Addr(0x000)));
        assert!(a.has_free_way(Addr(0x020)), "other sets unaffected");
    }

    #[test]
    fn iter_visits_every_resident_line() -> Result<(), ConfigError> {
        let g = CacheGeometry::new(512, 4, 32)?;
        let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
        for i in 0..8u64 {
            a.fill(Addr(i * 32), false);
        }
        assert_eq!(a.iter().count(), 8);
        Ok(())
    }

    proptest! {
        #[test]
        fn resident_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..0x4000, 0..200)) {
            let g = CacheGeometry::new(1024, 2, 32).unwrap();
            let mut a = CacheArray::new(g, ReplacementPolicy::Lru);
            for addr in addrs {
                a.fill(Addr(addr), addr % 3 == 0);
                prop_assert!(a.resident() <= a.geometry().lines());
                prop_assert_eq!(a.iter().count(), a.resident());
            }
        }

        #[test]
        fn a_filled_block_is_resident_until_evicted_or_invalidated(
            addrs in proptest::collection::vec(0u64..0x2000, 1..100),
            policy in prop::sample::select(vec![ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random]),
        ) {
            let g = CacheGeometry::new(1024, 4, 32).unwrap();
            let mut a = CacheArray::new(g, policy);
            for &addr in &addrs {
                let evicted = a.fill(Addr(addr), false);
                // The block just filled must be resident.
                prop_assert!(a.contains(Addr(addr)));
                // The evicted block (if any, and if distinct) must be gone.
                if let Some(e) = evicted {
                    if !e.addr.same_block(Addr(addr), 32) {
                        prop_assert!(!a.contains(e.addr));
                    }
                }
            }
        }
    }
}
