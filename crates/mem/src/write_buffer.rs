//! A coalescing write buffer.

use lnuca_types::{Addr, ConfigError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A FIFO write buffer that coalesces writes to the same block.
///
/// The paper's configuration places a 48-entry store buffer next to the core
/// and 32-entry write buffers in front of the L2 and L3 (Table I). The buffer
/// absorbs write-through traffic from the L1/r-tile and dirty evictions, and
/// drains one entry at a time to the next level.
///
/// # Example
///
/// ```
/// use lnuca_mem::WriteBuffer;
/// use lnuca_types::Addr;
///
/// let mut wb = WriteBuffer::new(4, 64)?;
/// assert!(wb.push(Addr(0x100)));
/// assert!(wb.push(Addr(0x13C))); // coalesces into the same 64 B block
/// assert_eq!(wb.occupancy(), 1);
/// assert_eq!(wb.drain_one(), Some(Addr(0x100)));
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteBuffer {
    entries: VecDeque<Addr>,
    capacity: usize,
    block_size: u64,
    coalesced: u64,
    accepted: u64,
    rejected: u64,
}

impl WriteBuffer {
    /// Creates a write buffer with `capacity` block entries for blocks of
    /// `block_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `capacity` is zero or `block_size` is not
    /// a power of two.
    pub fn new(capacity: usize, block_size: u64) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::new("capacity", "must be nonzero"));
        }
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(ConfigError::new(
                "block_size",
                format!("must be a nonzero power of two, got {block_size}"),
            ));
        }
        Ok(WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            block_size,
            coalesced: 0,
            accepted: 0,
            rejected: 0,
        })
    }

    /// Number of distinct blocks buffered.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no further non-coalescing writes can be accepted.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tries to buffer a write to `addr`. Returns `false` if the buffer is
    /// full and the write does not coalesce with an existing entry, in which
    /// case the writer must stall.
    pub fn push(&mut self, addr: Addr) -> bool {
        let base = addr.block_base(self.block_size);
        if self.entries.iter().any(|&e| e == base) {
            self.coalesced += 1;
            self.accepted += 1;
            return true;
        }
        if self.is_full() {
            self.rejected += 1;
            return false;
        }
        self.entries.push_back(base);
        self.accepted += 1;
        true
    }

    /// Returns `true` if a write to the block containing `addr` is buffered
    /// (used to satisfy read-after-write forwarding checks).
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let base = addr.block_base(self.block_size);
        self.entries.iter().any(|&e| e == base)
    }

    /// Removes and returns the oldest buffered block, if any.
    pub fn drain_one(&mut self) -> Option<Addr> {
        self.entries.pop_front()
    }

    /// Counts of (accepted, coalesced, rejected) pushes so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.accepted, self.coalesced, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pushes_coalesce_within_a_block() {
        let mut wb = WriteBuffer::new(2, 32).unwrap();
        assert!(wb.push(Addr(0x100)));
        assert!(wb.push(Addr(0x11F)));
        assert_eq!(wb.occupancy(), 1);
        let (accepted, coalesced, rejected) = wb.counters();
        assert_eq!((accepted, coalesced, rejected), (2, 1, 0));
    }

    #[test]
    fn full_buffer_rejects_new_blocks_but_still_coalesces() {
        let mut wb = WriteBuffer::new(1, 32).unwrap();
        assert!(wb.push(Addr(0x000)));
        assert!(!wb.push(Addr(0x040)));
        assert!(wb.push(Addr(0x01C)), "coalescing write is accepted even when full");
        assert_eq!(wb.counters().2, 1);
    }

    #[test]
    fn drain_is_fifo() {
        let mut wb = WriteBuffer::new(4, 32).unwrap();
        wb.push(Addr(0x40));
        wb.push(Addr(0x80));
        assert_eq!(wb.drain_one(), Some(Addr(0x40)));
        assert_eq!(wb.drain_one(), Some(Addr(0x80)));
        assert_eq!(wb.drain_one(), None);
        assert!(wb.is_empty());
    }

    #[test]
    fn contains_matches_blocks() {
        let mut wb = WriteBuffer::new(4, 64).unwrap();
        wb.push(Addr(0x100));
        assert!(wb.contains(Addr(0x13F)));
        assert!(!wb.contains(Addr(0x140)));
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(WriteBuffer::new(0, 64).is_err());
        assert!(WriteBuffer::new(4, 3).is_err());
    }

    proptest! {
        #[test]
        fn occupancy_bounded_and_drains_to_empty(addrs in proptest::collection::vec(0u64..0x1000, 0..100)) {
            let mut wb = WriteBuffer::new(8, 64).unwrap();
            for &a in &addrs {
                let _ = wb.push(Addr(a));
                prop_assert!(wb.occupancy() <= 8);
            }
            let mut drained = 0;
            while wb.drain_one().is_some() {
                drained += 1;
            }
            prop_assert!(drained <= 8);
            prop_assert!(wb.is_empty());
        }
    }
}
