//! A timed conventional set-associative cache.

use crate::{CacheArray, CacheGeometry, EvictedLine, ReplacementPolicy};
use lnuca_types::{Addr, ConfigError, Cycle};
use serde::{Deserialize, Serialize};

/// Whether tag and data arrays are accessed in parallel or serially.
///
/// Parallel access (used by the paper's L1, r-tile and L-NUCA tiles) reads
/// all data ways while the tags are compared, which is faster but burns more
/// dynamic energy. Serial access (used by the L2) reads only the matching
/// data way after tag comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccessMode {
    /// Tags and data accessed concurrently.
    #[default]
    Parallel,
    /// Tags first, then the selected data way.
    Serial,
}

/// How writes that hit are propagated to the next level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Every write is forwarded to the next level (paper's L1/r-tile).
    WriteThrough,
    /// Writes dirty the line; data reaches the next level on eviction
    /// (paper's L2, L3, L-NUCA tiles and D-NUCA banks).
    #[default]
    CopyBack,
}

/// Static configuration of a [`ConventionalCache`].
///
/// Use [`CacheConfig::builder`] to construct one; the builder applies the
/// paper's defaults (LRU replacement, copy-back, parallel access, one port)
/// and validates the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable name used in reports ("L1", "L2", ...).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Cycles from access start until the data is available (completion).
    pub completion_cycles: u64,
    /// Minimum cycles between two successive accesses on the same port
    /// (initiation interval).
    pub initiation_interval: u64,
    /// Cycles from access start until a miss is determined. For the small,
    /// low-associativity caches of the paper this is roughly 80 % of the
    /// completion latency; for serial-access caches it equals the tag-array
    /// latency.
    pub miss_determination_cycles: u64,
    /// Number of ports.
    pub ports: usize,
    /// Tag/data access mode.
    pub access_mode: AccessMode,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Starts building a configuration named `name` with the paper defaults.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> CacheConfigBuilder {
        CacheConfigBuilder::new(name)
    }

    /// The cache geometry implied by this configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if size/ways/block size are inconsistent.
    pub fn geometry(&self) -> Result<CacheGeometry, ConfigError> {
        CacheGeometry::new(self.size_bytes, self.ways, self.block_size)
    }
}

/// Builder for [`CacheConfig`] (see [`CacheConfig::builder`]).
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    config: CacheConfig,
    miss_determination_set: bool,
}

impl CacheConfigBuilder {
    fn new(name: impl Into<String>) -> Self {
        CacheConfigBuilder {
            config: CacheConfig {
                name: name.into(),
                size_bytes: 32 * 1024,
                ways: 4,
                block_size: 32,
                completion_cycles: 2,
                initiation_interval: 1,
                miss_determination_cycles: 2,
                ports: 1,
                access_mode: AccessMode::Parallel,
                write_policy: WritePolicy::CopyBack,
                replacement: ReplacementPolicy::Lru,
            },
            miss_determination_set: false,
        }
    }

    /// Sets the total capacity in bytes.
    #[must_use]
    pub fn size_bytes(mut self, size: u64) -> Self {
        self.config.size_bytes = size;
        self
    }

    /// Sets the associativity.
    #[must_use]
    pub fn ways(mut self, ways: usize) -> Self {
        self.config.ways = ways;
        self
    }

    /// Sets the block size in bytes.
    #[must_use]
    pub fn block_size(mut self, block_size: u64) -> Self {
        self.config.block_size = block_size;
        self
    }

    /// Sets the completion latency in cycles.
    #[must_use]
    pub fn completion_cycles(mut self, cycles: u64) -> Self {
        self.config.completion_cycles = cycles;
        self
    }

    /// Sets the initiation interval in cycles.
    #[must_use]
    pub fn initiation_interval(mut self, cycles: u64) -> Self {
        self.config.initiation_interval = cycles;
        self
    }

    /// Sets the miss-determination latency in cycles. If not called, it
    /// defaults to 80 % of the completion latency (rounded up, at least one
    /// cycle), matching the paper's Cacti observation.
    #[must_use]
    pub fn miss_determination_cycles(mut self, cycles: u64) -> Self {
        self.config.miss_determination_cycles = cycles;
        self.miss_determination_set = true;
        self
    }

    /// Sets the number of ports.
    #[must_use]
    pub fn ports(mut self, ports: usize) -> Self {
        self.config.ports = ports;
        self
    }

    /// Sets the tag/data access mode.
    #[must_use]
    pub fn access_mode(mut self, mode: AccessMode) -> Self {
        self.config.access_mode = mode;
        self
    }

    /// Sets the write policy.
    #[must_use]
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.config.write_policy = policy;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.config.replacement = policy;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the geometry is inconsistent, any latency
    /// is zero, or the port count is zero.
    pub fn build(mut self) -> Result<CacheConfig, ConfigError> {
        if !self.miss_determination_set {
            let md = (self.config.completion_cycles * 4).div_ceil(5).max(1);
            self.config.miss_determination_cycles = md;
        }
        let cfg = self.config;
        CacheGeometry::new(cfg.size_bytes, cfg.ways, cfg.block_size)?;
        if cfg.completion_cycles == 0 {
            return Err(ConfigError::new("completion_cycles", "must be nonzero"));
        }
        if cfg.initiation_interval == 0 {
            return Err(ConfigError::new("initiation_interval", "must be nonzero"));
        }
        if cfg.miss_determination_cycles == 0 || cfg.miss_determination_cycles > cfg.completion_cycles {
            return Err(ConfigError::new(
                "miss_determination_cycles",
                format!(
                    "must be in 1..={} (completion), got {}",
                    cfg.completion_cycles, cfg.miss_determination_cycles
                ),
            ));
        }
        if cfg.ports == 0 {
            return Err(ConfigError::new("ports", "must be nonzero"));
        }
        Ok(cfg)
    }
}

/// The timing outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The block is resident; data is available at `ready_at`.
    Hit {
        /// Cycle at which the data is available to the requester.
        ready_at: Cycle,
    },
    /// The block is absent; the miss is known at `determined_at` and a
    /// request to the next level can be launched then.
    Miss {
        /// Cycle at which the miss is determined.
        determined_at: Cycle,
    },
}

impl AccessOutcome {
    /// Returns `true` for a hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// The cycle at which the outcome (data or miss signal) is known.
    #[must_use]
    pub fn resolved_at(self) -> Cycle {
        match self {
            AccessOutcome::Hit { ready_at } => ready_at,
            AccessOutcome::Miss { determined_at } => determined_at,
        }
    }
}

/// Event counters of a [`ConventionalCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Blocks filled from the next level.
    pub fills: u64,
    /// Evictions of clean blocks.
    pub clean_evictions: u64,
    /// Evictions of dirty blocks (write-backs).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// All hits (read + write).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// All misses (read + write).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio over all accesses, or 0.0 if there were none.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A conventional set-associative cache with completion/initiation timing.
///
/// The cache tracks residency (via [`CacheArray`]), port occupancy and event
/// counters. It does **not** own the downstream connection: the hierarchy
/// model in `lnuca-sim` reacts to [`AccessOutcome::Miss`] by allocating an
/// MSHR and querying the next level, then calls [`ConventionalCache::fill`]
/// when the data returns. This keeps the cache reusable both as an L2/L3 and
/// as the tag/data pipeline inside D-NUCA banks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConventionalCache {
    config: CacheConfig,
    array: CacheArray,
    ports_free_at: Vec<Cycle>,
    stats: CacheStats,
}

impl ConventionalCache {
    /// Creates an empty cache from its configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration geometry is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        let geometry = config.geometry()?;
        let array = CacheArray::new(geometry, config.replacement);
        let ports_free_at = vec![Cycle::ZERO; config.ports];
        Ok(ConventionalCache {
            config,
            array,
            ports_free_at,
            stats: CacheStats::default(),
        })
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Event counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Returns `true` if the block containing `addr` is resident (no timing
    /// or recency side effects).
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        self.array.contains(addr)
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.array.resident()
    }

    /// Iterates over all resident lines (in no particular order) — the
    /// final-residency enumeration the differential oracle compares.
    pub fn lines(&self) -> impl Iterator<Item = crate::Line> + '_ {
        self.array.iter()
    }

    /// Earliest cycle, not before `now`, at which a port can start an access.
    #[must_use]
    pub fn next_port_available(&self, now: Cycle) -> Cycle {
        self.ports_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Cycle::ZERO)
            .max(now)
    }

    /// Performs a timed access for the block containing `addr`.
    ///
    /// `is_write` selects the counter bucket and, for copy-back caches, marks
    /// the line dirty on a hit. The access starts when a port is free (which
    /// may be after `now`) and the returned outcome carries the cycle at
    /// which data (hit) or the miss indication becomes available.
    pub fn access(&mut self, addr: Addr, is_write: bool, now: Cycle) -> AccessOutcome {
        let start = self.reserve_port(now);
        self.stats.accesses += 1;
        let hit = self.array.lookup(addr).is_some();
        if hit {
            if is_write {
                self.stats.write_hits += 1;
                if self.config.write_policy == WritePolicy::CopyBack {
                    self.array.mark_dirty(addr);
                }
            } else {
                self.stats.read_hits += 1;
            }
            AccessOutcome::Hit {
                ready_at: start + self.config.completion_cycles,
            }
        } else {
            if is_write {
                self.stats.write_misses += 1;
            } else {
                self.stats.read_misses += 1;
            }
            AccessOutcome::Miss {
                determined_at: start + self.config.miss_determination_cycles,
            }
        }
    }

    /// Fills the block containing `addr`, evicting a victim if necessary.
    ///
    /// `dirty` should be `true` when the fill carries modified data (e.g. a
    /// dirty block displaced from a level above in an exclusive hierarchy).
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.stats.fills += 1;
        let evicted = self.array.fill(addr, dirty);
        if let Some(e) = &evicted {
            if e.dirty {
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
        }
        evicted
    }

    /// Marks the block containing `addr` dirty if resident.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        self.array.mark_dirty(addr)
    }

    /// Invalidates the block containing `addr`, returning its metadata.
    pub fn invalidate(&mut self, addr: Addr) -> Option<crate::Line> {
        self.array.invalidate(addr)
    }

    fn reserve_port(&mut self, now: Cycle) -> Cycle {
        let (idx, &free_at) = self
            .ports_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("cache has at least one port");
        let start = free_at.max(now);
        self.ports_free_at[idx] = start + self.config.initiation_interval;
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_config() -> CacheConfig {
        CacheConfig::builder("L2")
            .size_bytes(256 * 1024)
            .ways(8)
            .block_size(64)
            .completion_cycles(4)
            .initiation_interval(2)
            .access_mode(AccessMode::Serial)
            .write_policy(WritePolicy::CopyBack)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_miss_determination_to_80_percent() {
        let cfg = CacheConfig::builder("L3")
            .size_bytes(8 * 1024 * 1024)
            .ways(16)
            .block_size(128)
            .completion_cycles(20)
            .initiation_interval(15)
            .build()
            .unwrap();
        assert_eq!(cfg.miss_determination_cycles, 16);
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(CacheConfig::builder("x").size_bytes(3000).build().is_err());
        assert!(CacheConfig::builder("x").completion_cycles(0).build().is_err());
        assert!(CacheConfig::builder("x").ports(0).build().is_err());
        assert!(CacheConfig::builder("x")
            .completion_cycles(2)
            .miss_determination_cycles(5)
            .build()
            .is_err());
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = ConventionalCache::new(l2_config()).unwrap();
        let a = Addr(0x4_0000);
        let out = c.access(a, false, Cycle(0));
        assert!(!out.is_hit());
        c.fill(a, false);
        let out = c.access(a, false, Cycle(10));
        match out {
            AccessOutcome::Hit { ready_at } => assert_eq!(ready_at, Cycle(14)),
            AccessOutcome::Miss { .. } => panic!("expected hit after fill"),
        }
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn initiation_interval_serialises_port_usage() {
        let mut c = ConventionalCache::new(l2_config()).unwrap();
        c.fill(Addr(0x0), false);
        c.fill(Addr(0x40), false);
        let first = c.access(Addr(0x0), false, Cycle(0));
        let second = c.access(Addr(0x40), false, Cycle(0));
        // Single port, initiation interval 2: second access starts at cycle 2.
        assert_eq!(first.resolved_at(), Cycle(4));
        assert_eq!(second.resolved_at(), Cycle(6));
    }

    #[test]
    fn two_ports_allow_concurrent_accesses() {
        let cfg = CacheConfig::builder("L1")
            .size_bytes(32 * 1024)
            .ways(4)
            .block_size(32)
            .completion_cycles(2)
            .initiation_interval(1)
            .ports(2)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut c = ConventionalCache::new(cfg).unwrap();
        c.fill(Addr(0x0), false);
        c.fill(Addr(0x20), false);
        let a = c.access(Addr(0x0), false, Cycle(5));
        let b = c.access(Addr(0x20), false, Cycle(5));
        assert_eq!(a.resolved_at(), Cycle(7));
        assert_eq!(b.resolved_at(), Cycle(7));
    }

    #[test]
    fn copy_back_write_hits_dirty_the_line() {
        let mut c = ConventionalCache::new(l2_config()).unwrap();
        let a = Addr(0x100);
        c.fill(a, false);
        c.access(a, true, Cycle(0));
        // Evict by filling conflicting blocks; the victim must be dirty.
        let sets = c.config().geometry().unwrap().sets() as u64;
        let block = c.config().block_size;
        let mut dirty_seen = false;
        for i in 1..=8 {
            if let Some(e) = c.fill(Addr(0x100 + i * sets * block), false) {
                if e.addr == Addr(0x100) {
                    dirty_seen = e.dirty;
                }
            }
        }
        assert!(dirty_seen, "the written block must be evicted dirty");
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn miss_determination_uses_configured_latency() {
        let cfg = CacheConfig::builder("tile")
            .size_bytes(8 * 1024)
            .ways(2)
            .block_size(32)
            .completion_cycles(1)
            .initiation_interval(1)
            .miss_determination_cycles(1)
            .build()
            .unwrap();
        let mut c = ConventionalCache::new(cfg).unwrap();
        match c.access(Addr(0x40), false, Cycle(3)) {
            AccessOutcome::Miss { determined_at } => assert_eq!(determined_at, Cycle(4)),
            AccessOutcome::Hit { .. } => panic!("empty cache cannot hit"),
        }
    }

    #[test]
    fn stats_miss_ratio() {
        let mut c = ConventionalCache::new(l2_config()).unwrap();
        c.access(Addr(0x0), false, Cycle(0));
        c.fill(Addr(0x0), false);
        c.access(Addr(0x0), false, Cycle(0));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }
}
