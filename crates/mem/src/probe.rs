//! Instrumentation hooks for differential verification.
//!
//! The hierarchies in `lnuca-sim` report every *functional* state transition
//! — demand accesses, outer-level fetches, fabric hits, victims, spills and
//! write-buffer drains — through a [`ProbeSink`]. The `lnuca-verify` crate
//! replays the recorded event stream through a timing-free reference model
//! and asserts that the detailed simulator computed the same cache contents.
//!
//! # Probe rules (DESIGN.md §11)
//!
//! * **Probes must stay allocation-free.** [`ProbeEvent`] is `Copy` and a
//!   sink's [`ProbeSink::record`] runs inside the per-cycle hot loops; the
//!   default [`NoProbe`] sink is an empty inline function, so probed code
//!   monomorphises to exactly the un-probed code in normal runs and the
//!   zero-allocation counting tests (`crates/core/tests/zero_alloc.rs`,
//!   `crates/sim/tests/zero_alloc.rs`) keep passing.
//! * **Probes must not perturb timing.** A sink only observes; it must never
//!   feed anything back into the component that calls it, so the
//!   event-horizon contract of DESIGN.md §10 is unaffected by probing.
//! * **Events fire in functional order.** A hierarchy emits events in
//!   exactly the order its caches change state; the reference model relies
//!   on this to replay the run without modelling time.

use crate::cache::CacheStats;
use lnuca_types::{Addr, ServiceLevel};

/// Classification of one demand access at the first level (L1 / root tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// The block was resident in the first level.
    Hit,
    /// The block missed and the fetch resolved synchronously at the given
    /// level (the `ClassicHierarchy` path: L2/L3/D-NUCA/memory chain).
    Miss(ServiceLevel),
    /// The block missed and a fabric search was launched; the outcome
    /// arrives later as [`ProbeEvent::FabricHit`] or
    /// [`ProbeEvent::OuterFetch`] (the `LNucaHierarchy` path).
    MissLaunched,
    /// The access merged into an already-in-flight fetch of the same block
    /// (a secondary miss): no cache state was touched.
    Merged,
}

/// One functional state transition reported by a hierarchy.
///
/// Every variant is `Copy` and carries raw (unaligned) addresses; consumers
/// normalise to block bases with their own geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A demand access offered to the first level by the core.
    Access {
        /// Requested address.
        addr: Addr,
        /// `true` for stores.
        is_write: bool,
        /// What the first level decided.
        class: AccessClass,
    },
    /// A fabric hit delivered to the root tile (the block leaves the fabric
    /// and is filled into the root).
    FabricHit {
        /// Block address.
        addr: Addr,
        /// L-NUCA level (2-based) whose tile serviced the hit.
        level: u8,
        /// Whether the block travelled dirty.
        dirty: bool,
    },
    /// A global fabric miss forwarded to the outer level (L3 or D-NUCA),
    /// which resolved it at `served`.
    OuterFetch {
        /// Block address.
        addr: Addr,
        /// `true` when the original demand access was a store.
        is_write: bool,
        /// Component that provided the block.
        served: ServiceLevel,
    },
    /// A victim displaced from the root tile into the Replacement network.
    RootVictim {
        /// Block address of the victim.
        addr: Addr,
        /// Whether the victim was dirty.
        dirty: bool,
    },
    /// A block spilled out of the outermost fabric tiles.
    Spill {
        /// Block address.
        addr: Addr,
        /// Whether the spilled block was dirty.
        dirty: bool,
    },
    /// One coalesced write drained from the write buffer toward the outer
    /// level (which marks the block dirty where it resides).
    WriteDrain {
        /// Block address of the drained write.
        addr: Addr,
    },
    /// One demand access admitted by a CMP core's private domain and the
    /// MSI directory (DESIGN.md §17). Single-core hierarchies never emit
    /// this; the coherence oracle in `lnuca-verify` replays the stream.
    CoherentAccess {
        /// Issuing core index.
        core: u8,
        /// Requested address.
        addr: Addr,
        /// `true` for stores.
        is_write: bool,
        /// `true` when the private domain already held the block with
        /// sufficient permission (read: any copy; write: owned Modified).
        hit: bool,
    },
    /// A block dropped out of a CMP core's private domain by capacity
    /// pressure (the directory is told the core no longer holds it).
    CoherentEvict {
        /// Core whose private domain shrank.
        core: u8,
        /// Block address of the dropped line.
        addr: Addr,
    },
    /// A directory recall: the fixed-slot directory displaced this line to
    /// make room, invalidating every private copy in one stroke.
    CoherentRecall {
        /// Block address of the recalled line.
        addr: Addr,
    },
}

/// A consumer of [`ProbeEvent`]s.
///
/// Implementations must be allocation-free when used inside simulation hot
/// loops unless they are verification-only sinks (a recording sink that
/// grows a `Vec` is fine in `lnuca-verify`, which never asserts the
/// zero-allocation invariant).
pub trait ProbeSink {
    /// Observes one event. Called at the exact point the corresponding
    /// functional state transition happens.
    fn record(&mut self, event: ProbeEvent);
}

/// The default sink: does nothing, compiles to nothing.
///
/// Hierarchies are generic over their sink with `NoProbe` as the default
/// type parameter, so un-probed builds monomorphise every `record` call to
/// an empty inline function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl ProbeSink for NoProbe {
    #[inline(always)]
    fn record(&mut self, _event: ProbeEvent) {}
}

/// A sink that keeps nothing but per-class totals — handy for smoke tests
/// and cheap sanity assertions without recording whole event streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// Demand accesses that hit the first level.
    pub hits: u64,
    /// Demand accesses that missed (both synchronous and launched).
    pub misses: u64,
    /// Demand accesses merged into in-flight fetches.
    pub merged: u64,
    /// Fabric hits delivered to the root tile.
    pub fabric_hits: u64,
    /// Outer-level fetches (global misses for fabric hierarchies).
    pub outer_fetches: u64,
    /// Root-tile victims handed to the fabric.
    pub root_victims: u64,
    /// Fabric spills.
    pub spills: u64,
    /// Write-buffer drains.
    pub write_drains: u64,
}

impl CountingProbe {
    /// Cross-checks the totals against a first-level [`CacheStats`]:
    /// the probed hit/miss split must equal the cache's own counters.
    #[must_use]
    pub fn matches_first_level(&self, stats: &CacheStats) -> bool {
        self.hits == stats.hits() && self.misses == stats.misses()
    }
}

impl ProbeSink for CountingProbe {
    #[inline]
    fn record(&mut self, event: ProbeEvent) {
        match event {
            ProbeEvent::Access { class, .. } => match class {
                AccessClass::Hit => self.hits += 1,
                AccessClass::Miss(_) | AccessClass::MissLaunched => self.misses += 1,
                AccessClass::Merged => self.merged += 1,
            },
            ProbeEvent::FabricHit { .. } => self.fabric_hits += 1,
            ProbeEvent::OuterFetch { .. } => self.outer_fetches += 1,
            ProbeEvent::RootVictim { .. } => self.root_victims += 1,
            ProbeEvent::Spill { .. } => self.spills += 1,
            ProbeEvent::WriteDrain { .. } => self.write_drains += 1,
            ProbeEvent::CoherentAccess { hit, .. } => {
                if hit {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
            }
            ProbeEvent::CoherentEvict { .. } | ProbeEvent::CoherentRecall { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_probe_buckets_events() {
        let mut p = CountingProbe::default();
        p.record(ProbeEvent::Access {
            addr: Addr(0x40),
            is_write: false,
            class: AccessClass::Hit,
        });
        p.record(ProbeEvent::Access {
            addr: Addr(0x80),
            is_write: true,
            class: AccessClass::Miss(ServiceLevel::L2),
        });
        p.record(ProbeEvent::Access {
            addr: Addr(0xC0),
            is_write: false,
            class: AccessClass::MissLaunched,
        });
        p.record(ProbeEvent::Access {
            addr: Addr(0xC4),
            is_write: false,
            class: AccessClass::Merged,
        });
        p.record(ProbeEvent::WriteDrain { addr: Addr(0x80) });
        assert_eq!((p.hits, p.misses, p.merged, p.write_drains), (1, 2, 1, 1));
    }

    #[test]
    fn no_probe_is_a_no_op() {
        let mut sink = NoProbe;
        sink.record(ProbeEvent::Spill {
            addr: Addr(0),
            dirty: false,
        });
        assert_eq!(sink, NoProbe);
    }
}
