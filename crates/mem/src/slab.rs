//! A structure-of-arrays arena for the packed tag lanes of a simulation
//! batch (DESIGN.md §13).
//!
//! When N independent simulations are stepped in lockstep by one worker,
//! their hot state — the packed `u64` tag lanes every [`crate::CacheArray`]
//! scans on each access — should live side by side in a few large
//! contiguous chunks instead of N scattered per-array heap boxes: the
//! batch's working set then walks forward through memory as the members
//! advance together, which is the cache-friendly layout batched execution
//! exists for (and the same layout a future SIMD/GPU port would require).
//!
//! A [`TagSlab`] is a bump allocator over `Arc<[AtomicU64]>` chunks.
//! Installing it with [`TagSlab::scoped`] makes every [`crate::CacheArray`]
//! constructed inside the closure carve its tag lane out of the slab
//! instead of allocating its own box; arrays built outside a scope are
//! unaffected. Ranges are handed out once and never recycled — the slab is
//! construction-time machinery, so the steady-state zero-allocation rule
//! (DESIGN.md §9) is untouched.
//!
//! The words are `AtomicU64` only so that arrays holding disjoint ranges of
//! one chunk can all mutate their own range through a shared `Arc` without
//! `unsafe` (the whole workspace forbids it) and without poisoning every
//! `CacheArray` with `!Send`. All accesses use relaxed ordering — on every
//! mainstream ISA a plain load/store — and no two arrays ever touch the
//! same word, so there is no synchronisation, only a safe shared-ownership
//! story.
//!
//! # Example
//!
//! ```
//! use lnuca_mem::{CacheArray, CacheGeometry, ReplacementPolicy, TagSlab};
//! use lnuca_types::Addr;
//!
//! let slab = TagSlab::new();
//! let geometry = CacheGeometry::new(8 * 1024, 2, 32)?;
//! let (mut a, mut b) = slab.scoped(|| {
//!     (
//!         CacheArray::new(geometry, ReplacementPolicy::Lru),
//!         CacheArray::new(geometry, ReplacementPolicy::Lru),
//!     )
//! });
//! // Both tag lanes share one chunk; behaviour is identical to owned mode.
//! assert_eq!(slab.allocated_words(), 2 * geometry.lines());
//! assert_eq!(slab.chunk_count(), 1);
//! a.fill(Addr(0x40), false);
//! assert!(a.lookup(Addr(0x40)).is_some());
//! assert!(b.lookup(Addr(0x40)).is_none(), "members stay fully isolated");
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Default chunk size, in `u64` words. Large enough that a whole paper
/// hierarchy (L1 + fabric tiles + L2/L3 or D-NUCA banks, ~145k lines for
/// the biggest shape) fits in a handful of chunks, small enough that a
/// tiny batch does not commit tens of megabytes.
const DEFAULT_CHUNK_WORDS: usize = 1 << 18;

/// The empty-way sentinel the tag lanes are initialised to; must match
/// `array::EMPTY_TAG`.
const EMPTY_WORD: u64 = u64::MAX;

/// A bump-allocated arena of packed tag words, shared by every
/// [`crate::CacheArray`] built inside a [`TagSlab::scoped`] region.
///
/// Cloning a `TagSlab` is cheap and yields a handle to the same arena.
/// The handle itself is single-threaded (`!Send`); the chunks it hands out
/// are `Arc<[AtomicU64]>`, so the arrays that hold them remain `Send`.
#[derive(Debug, Clone, Default)]
pub struct TagSlab {
    inner: Rc<RefCell<SlabInner>>,
}

#[derive(Debug)]
struct SlabInner {
    chunks: Vec<Arc<[AtomicU64]>>,
    /// Words already carved out of the last chunk.
    cursor: usize,
    chunk_words: usize,
    allocated: usize,
}

impl Default for SlabInner {
    fn default() -> Self {
        SlabInner {
            chunks: Vec::new(),
            cursor: 0,
            chunk_words: DEFAULT_CHUNK_WORDS,
            allocated: 0,
        }
    }
}

thread_local! {
    /// The slab new [`crate::CacheArray`]s carve their tag lanes from, if
    /// any ([`TagSlab::scoped`] installs it).
    static CURRENT: RefCell<Option<TagSlab>> = const { RefCell::new(None) };
}

/// Restores the previously installed slab when a scope ends, even on
/// panic, so a failing batch constructor cannot leak its slab into
/// unrelated code on the same thread.
struct ScopeGuard {
    previous: Option<TagSlab>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

impl TagSlab {
    /// Creates an empty slab with the default chunk size.
    #[must_use]
    pub fn new() -> Self {
        TagSlab::default()
    }

    /// Creates an empty slab whose chunks hold `chunk_words` words
    /// (clamped to at least 1). Lanes longer than a chunk get a dedicated
    /// chunk of exactly their length.
    #[must_use]
    pub fn with_chunk_words(chunk_words: usize) -> Self {
        let slab = TagSlab::new();
        slab.inner.borrow_mut().chunk_words = chunk_words.max(1);
        slab
    }

    /// Runs `f` with this slab installed as the thread's current tag
    /// arena: every [`crate::CacheArray`] constructed inside allocates its
    /// tag lane from the slab. Scopes nest (the previous slab is restored
    /// on exit, panic included).
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT.with(|current| current.borrow_mut().replace(self.clone()));
        let _guard = ScopeGuard { previous };
        f()
    }

    /// The slab installed by the innermost active [`TagSlab::scoped`] on
    /// this thread, if any.
    #[must_use]
    pub fn current() -> Option<TagSlab> {
        CURRENT.with(|current| current.borrow().clone())
    }

    /// Carves a `len`-word lane out of the slab, opening a new chunk when
    /// the current one cannot hold it. Returns the chunk and the lane's
    /// starting word. Every word is initialised to the empty-way sentinel.
    #[must_use]
    pub(crate) fn alloc(&self, len: usize) -> (Arc<[AtomicU64]>, usize) {
        let mut inner = self.inner.borrow_mut();
        let fits = inner
            .chunks
            .last()
            .is_some_and(|chunk| inner.cursor + len <= chunk.len());
        if !fits {
            let words = inner.chunk_words.max(len);
            let chunk: Arc<[AtomicU64]> = (0..words).map(|_| AtomicU64::new(EMPTY_WORD)).collect();
            inner.chunks.push(chunk);
            inner.cursor = 0;
        }
        let start = inner.cursor;
        inner.cursor += len;
        inner.allocated += len;
        let chunk = inner.chunks.last().expect("a chunk was just ensured").clone();
        (chunk, start)
    }

    /// Total words carved out so far.
    #[must_use]
    pub fn allocated_words(&self) -> usize {
        self.inner.borrow().allocated
    }

    /// Number of chunks backing the carved lanes (co-located lanes share
    /// chunks; this is how tests assert the structure-of-arrays layout).
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.inner.borrow().chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn lanes_pack_into_shared_chunks_in_order() {
        let slab = TagSlab::with_chunk_words(16);
        let (c1, s1) = slab.alloc(5);
        let (c2, s2) = slab.alloc(7);
        assert!(Arc::ptr_eq(&c1, &c2), "both lanes fit one chunk");
        assert_eq!((s1, s2), (0, 5));
        let (c3, s3) = slab.alloc(6);
        assert!(!Arc::ptr_eq(&c1, &c3), "a full chunk opens a new one");
        assert_eq!(s3, 0);
        assert_eq!(slab.allocated_words(), 18);
        assert_eq!(slab.chunk_count(), 2);
    }

    #[test]
    fn oversized_lanes_get_a_dedicated_chunk() {
        let slab = TagSlab::with_chunk_words(8);
        let (chunk, start) = slab.alloc(100);
        assert_eq!(start, 0);
        assert_eq!(chunk.len(), 100);
        assert!(chunk.iter().all(|w| w.load(Ordering::Relaxed) == EMPTY_WORD));
    }

    #[test]
    fn scopes_nest_and_restore_on_exit() {
        assert!(TagSlab::current().is_none());
        let outer = TagSlab::new();
        outer.scoped(|| {
            let inner = TagSlab::new();
            inner.scoped(|| {
                let current = TagSlab::current().expect("inner scope installs");
                let _ = current.alloc(4);
            });
            assert_eq!(inner.allocated_words(), 4);
            assert_eq!(outer.allocated_words(), 0, "inner scope shadows the outer slab");
            assert!(Rc::ptr_eq(
                &TagSlab::current().expect("outer restored").inner,
                &outer.inner
            ));
        });
        assert!(TagSlab::current().is_none());
    }

    #[test]
    fn scopes_restore_on_panic() {
        let slab = TagSlab::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.scoped(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        assert!(TagSlab::current().is_none(), "the guard uninstalls on unwind");
    }
}
