//! Conventional memory-hierarchy substrates for the Light NUCA reproduction.
//!
//! The paper evaluates L-NUCA against a conventional three-level hierarchy
//! (32 KB L1, 256 KB L2, 8 MB L3) and on top of an 8 MB D-NUCA. This crate
//! provides the building blocks those hierarchies are assembled from:
//!
//! * [`CacheGeometry`] — size/associativity/block-size bookkeeping,
//! * [`CacheArray`] — a tag/data array with pluggable [`ReplacementPolicy`],
//! * [`MshrFile`] — miss status holding registers with secondary-miss merging,
//! * [`WriteBuffer`] — a coalescing write buffer,
//! * [`ConventionalCache`] — a timed set-associative cache (completion and
//!   initiation latencies, serial/parallel access, write-through/copy-back),
//! * [`MainMemory`] — the DRAM model (first chunk + inter-chunk latency),
//! * [`probe`] — the [`ProbeSink`] instrumentation hooks the hierarchies in
//!   `lnuca-sim` report functional state transitions through (no-op by
//!   default; the differential oracle in `lnuca-verify` records them).
//!
//! # Example
//!
//! ```
//! use lnuca_mem::{CacheConfig, ConventionalCache, WritePolicy, AccessMode};
//! use lnuca_types::Addr;
//!
//! let cfg = CacheConfig::builder("L2")
//!     .size_bytes(256 * 1024)
//!     .ways(8)
//!     .block_size(64)
//!     .completion_cycles(4)
//!     .initiation_interval(2)
//!     .access_mode(AccessMode::Serial)
//!     .write_policy(WritePolicy::CopyBack)
//!     .build()?;
//! let mut l2 = ConventionalCache::new(cfg)?;
//! assert!(!l2.probe(Addr(0x1000)));
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cache;
pub mod dram;
pub mod geometry;
pub mod mshr;
pub mod probe;
pub mod replacement;
pub mod slab;
pub mod write_buffer;

pub use array::{CacheArray, EvictedLine, Line};
pub use slab::TagSlab;
pub use probe::{AccessClass, CountingProbe, NoProbe, ProbeEvent, ProbeSink};
pub use cache::{
    AccessMode, AccessOutcome, CacheConfig, CacheConfigBuilder, CacheStats, ConventionalCache,
    WritePolicy,
};
pub use dram::{MainMemory, MemoryConfig};
pub use geometry::CacheGeometry;
pub use mshr::{MshrAllocation, MshrFile};
pub use replacement::ReplacementPolicy;
pub use write_buffer::WriteBuffer;
