//! Miss status holding registers (MSHRs).

use lnuca_types::{Addr, ConfigError, ReqId};
use serde::{Deserialize, Serialize};

/// Result of trying to allocate an MSHR for a missing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrAllocation {
    /// The miss is the first one to this block: a new entry was allocated and
    /// a request must be sent to the next level.
    Primary,
    /// The block is already being fetched: the request was merged into the
    /// existing entry and no new downstream request is needed.
    Secondary,
    /// No entry could be allocated (all entries in use, or the entry for this
    /// block already holds the maximum number of secondary misses). The
    /// requester must stall and retry.
    Full,
}

impl MshrAllocation {
    /// Returns `true` when a downstream request must be issued.
    #[must_use]
    pub fn is_primary(self) -> bool {
        matches!(self, MshrAllocation::Primary)
    }

    /// Returns `true` when the requester must stall.
    #[must_use]
    pub fn is_full(self) -> bool {
        matches!(self, MshrAllocation::Full)
    }
}

/// One physical MSHR slot. Dead slots keep their `waiters` allocation so a
/// steady-state allocate/retire cycle never touches the heap (DESIGN.md §9).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MshrSlot {
    block: Addr,
    live: bool,
    waiters: Vec<ReqId>,
}

/// A file of miss status holding registers with secondary-miss merging,
/// stored as a fixed array of physical slots (first-fit allocation, slot
/// order is the deterministic sweep order).
///
/// The paper's configuration (Table I) uses 16 entries for the L1 and L2,
/// 8 for the L3, and allows 4 secondary misses per entry.
///
/// # Example
///
/// ```
/// use lnuca_mem::{MshrFile, MshrAllocation};
/// use lnuca_types::{Addr, ReqId};
///
/// let mut mshrs = MshrFile::new(16, 4, 64)?;
/// assert_eq!(mshrs.allocate(Addr(0x100), ReqId(1)), MshrAllocation::Primary);
/// assert_eq!(mshrs.allocate(Addr(0x104), ReqId(2)), MshrAllocation::Secondary);
/// let done = mshrs.complete(Addr(0x100));
/// assert_eq!(done, vec![ReqId(1), ReqId(2)]);
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MshrFile {
    /// Fixed-length slot array (`capacity` entries, live or dead).
    slots: Vec<MshrSlot>,
    occupancy: usize,
    secondary_per_entry: usize,
    block_size: u64,
    peak_occupancy: usize,
    primary_misses: u64,
    secondary_misses: u64,
    rejections: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries, each accepting up to
    /// `secondary_per_entry` merged misses beyond the primary one, tracking
    /// blocks of `block_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `capacity` is zero or `block_size` is not
    /// a power of two.
    pub fn new(capacity: usize, secondary_per_entry: usize, block_size: u64) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::new("capacity", "must be nonzero"));
        }
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(ConfigError::new(
                "block_size",
                format!("must be a nonzero power of two, got {block_size}"),
            ));
        }
        Ok(MshrFile {
            slots: (0..capacity)
                .map(|_| MshrSlot {
                    block: Addr(0),
                    live: false,
                    // Full capacity up front (primary + merged secondaries)
                    // so even the *first* allocate/merge cycle of a slot
                    // never grows the vector: the zero-allocation window of
                    // a batched run starts at construction, not after a
                    // warm-up (DESIGN.md §9/§13).
                    waiters: Vec::with_capacity(1 + secondary_per_entry),
                })
                .collect(),
            occupancy: 0,
            secondary_per_entry,
            block_size,
            peak_occupancy: 0,
            primary_misses: 0,
            secondary_misses: 0,
            rejections: 0,
        })
    }

    /// Number of entries currently in use.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy observed so far.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Returns `true` when no more primary misses can be accepted.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.occupancy >= self.slots.len()
    }

    /// Returns `true` if a fetch for the block containing `addr` is pending.
    #[must_use]
    pub fn is_pending(&self, addr: Addr) -> bool {
        let block = addr.block_base(self.block_size);
        self.slots.iter().any(|s| s.live && s.block == block)
    }

    /// Tries to register the miss of `req` on the block containing `addr`.
    pub fn allocate(&mut self, addr: Addr, req: ReqId) -> MshrAllocation {
        let block = addr.block_base(self.block_size);
        if let Some(slot) = self.slots.iter_mut().find(|s| s.live && s.block == block) {
            if slot.waiters.len() >= 1 + self.secondary_per_entry {
                self.rejections += 1;
                return MshrAllocation::Full;
            }
            slot.waiters.push(req);
            self.secondary_misses += 1;
            return MshrAllocation::Secondary;
        }
        let Some(slot) = self.slots.iter_mut().find(|s| !s.live) else {
            self.rejections += 1;
            return MshrAllocation::Full;
        };
        slot.block = block;
        slot.live = true;
        slot.waiters.clear();
        slot.waiters.push(req);
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
        self.primary_misses += 1;
        MshrAllocation::Primary
    }

    /// Completes the fetch of the block containing `addr`, freeing its entry
    /// and returning all requests that were waiting on it (primary first, in
    /// allocation order). Returns an empty vector if no entry matched.
    ///
    /// Allocating convenience over [`MshrFile::retire`] for callers that
    /// need the waiter list; the hierarchies' per-cycle retire sweeps use
    /// `retire`, which frees the entry without touching the heap.
    pub fn complete(&mut self, addr: Addr) -> Vec<ReqId> {
        let block = addr.block_base(self.block_size);
        match self.slots.iter_mut().find(|s| s.live && s.block == block) {
            Some(slot) => {
                slot.live = false;
                self.occupancy -= 1;
                std::mem::take(&mut slot.waiters)
            }
            None => Vec::new(),
        }
    }

    /// Frees the entry for the block containing `addr` without returning the
    /// waiter list, keeping the slot's waiter allocation for reuse. Returns
    /// the number of requests that were waiting (0 if no entry matched).
    pub fn retire(&mut self, addr: Addr) -> usize {
        let block = addr.block_base(self.block_size);
        match self.slots.iter_mut().find(|s| s.live && s.block == block) {
            Some(slot) => {
                slot.live = false;
                self.occupancy -= 1;
                let waiting = slot.waiters.len();
                slot.waiters.clear();
                waiting
            }
            None => 0,
        }
    }

    /// Counts of (primary, secondary, rejected) allocations so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.primary_misses, self.secondary_misses, self.rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primary_then_secondary_then_full_per_entry() {
        let mut m = MshrFile::new(2, 1, 64).unwrap();
        assert_eq!(m.allocate(Addr(0x00), ReqId(1)), MshrAllocation::Primary);
        assert_eq!(m.allocate(Addr(0x3F), ReqId(2)), MshrAllocation::Secondary);
        assert_eq!(m.allocate(Addr(0x20), ReqId(3)), MshrAllocation::Full, "entry for block 0 is saturated");
        assert_eq!(m.allocate(Addr(0x40), ReqId(4)), MshrAllocation::Primary);
        assert!(m.is_pending(Addr(0x00)));
        assert!(!m.is_pending(Addr(0x80)));
    }

    #[test]
    fn file_capacity_limits_primary_misses() {
        let mut m = MshrFile::new(2, 4, 64).unwrap();
        assert!(m.allocate(Addr(0x000), ReqId(1)).is_primary());
        assert!(m.allocate(Addr(0x040), ReqId(2)).is_primary());
        assert!(m.is_full());
        assert!(m.allocate(Addr(0x080), ReqId(3)).is_full());
        let (prim, sec, rej) = m.counters();
        assert_eq!((prim, sec, rej), (2, 0, 1));
    }

    #[test]
    fn complete_returns_waiters_in_order_and_frees_entry() {
        let mut m = MshrFile::new(4, 4, 64).unwrap();
        m.allocate(Addr(0x100), ReqId(10));
        m.allocate(Addr(0x110), ReqId(11));
        m.allocate(Addr(0x120), ReqId(12));
        assert_eq!(m.complete(Addr(0x13C)), vec![ReqId(10), ReqId(11), ReqId(12)]);
        assert_eq!(m.occupancy(), 0);
        assert!(m.complete(Addr(0x100)).is_empty());
    }

    #[test]
    fn retire_frees_the_entry_and_reports_waiter_count() {
        let mut m = MshrFile::new(2, 4, 64).unwrap();
        m.allocate(Addr(0x100), ReqId(1));
        m.allocate(Addr(0x110), ReqId(2));
        assert_eq!(m.retire(Addr(0x100)), 2);
        assert_eq!(m.occupancy(), 0);
        assert!(!m.is_pending(Addr(0x100)));
        assert_eq!(m.retire(Addr(0x100)), 0, "already retired");
        // The freed slot is reusable immediately.
        assert!(m.allocate(Addr(0x200), ReqId(3)).is_primary());
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        assert!(MshrFile::new(0, 4, 64).is_err());
        assert!(MshrFile::new(4, 4, 63).is_err());
    }

    #[test]
    fn peak_occupancy_is_monotonic() {
        let mut m = MshrFile::new(4, 0, 64).unwrap();
        m.allocate(Addr(0x000), ReqId(1));
        m.allocate(Addr(0x040), ReqId(2));
        assert_eq!(m.peak_occupancy(), 2);
        m.complete(Addr(0x000));
        m.complete(Addr(0x040));
        assert_eq!(m.peak_occupancy(), 2);
        assert_eq!(m.occupancy(), 0);
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            addrs in proptest::collection::vec(0u64..0x1000, 1..200),
            capacity in 1usize..8,
        ) {
            let mut m = MshrFile::new(capacity, 2, 64).unwrap();
            for (i, &a) in addrs.iter().enumerate() {
                let _ = m.allocate(Addr(a), ReqId(i as u64));
                prop_assert!(m.occupancy() <= capacity);
                // Occasionally complete something to exercise both paths.
                if i % 5 == 0 {
                    let _ = m.complete(Addr(a));
                }
            }
        }

        #[test]
        fn every_allocated_waiter_is_returned_exactly_once(addrs in proptest::collection::vec(0u64..0x400, 1..100)) {
            let mut m = MshrFile::new(64, 64, 64).unwrap();
            let mut accepted = Vec::new();
            for (i, &a) in addrs.iter().enumerate() {
                let id = ReqId(i as u64);
                match m.allocate(Addr(a), id) {
                    MshrAllocation::Primary | MshrAllocation::Secondary => accepted.push((a, id)),
                    MshrAllocation::Full => {}
                }
            }
            let mut returned = Vec::new();
            for &(a, _) in &accepted {
                returned.extend(m.complete(Addr(a)));
            }
            returned.sort_by_key(|r| r.0);
            returned.dedup();
            let mut expected: Vec<ReqId> = accepted.iter().map(|&(_, id)| id).collect();
            expected.sort_by_key(|r| r.0);
            prop_assert_eq!(returned, expected);
        }
    }
}
