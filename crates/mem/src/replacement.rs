//! Replacement policies for set-associative arrays.

use serde::{Deserialize, Serialize};

/// Which line to evict when a set is full.
///
/// The paper uses LRU everywhere ("All caches use LRU replacement"); the
/// other policies are provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (paper default).
    #[default]
    Lru,
    /// Evict the oldest-inserted line.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift sequence).
    Random,
}

impl ReplacementPolicy {
    /// Chooses the way to evict among `ways` candidate lines.
    ///
    /// `last_use[i]` is the last-touch timestamp of way `i`, `inserted[i]` its
    /// fill timestamp and `tick` a monotonically increasing value used to
    /// derandomise the `Random` policy deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or have different lengths.
    #[must_use]
    pub fn choose_victim(self, last_use: &[u64], inserted: &[u64], tick: u64) -> usize {
        assert_eq!(last_use.len(), inserted.len(), "way metadata length mismatch");
        self.choose_victim_from(last_use.iter().copied().zip(inserted.iter().copied()), tick)
    }

    /// Chooses the way to evict, streaming `(last_use, inserted)` pairs
    /// instead of materialising two slices.
    ///
    /// This is the form the per-cycle loops use: a cache array can feed its
    /// way metadata straight from its set without building temporary `Vec`s
    /// (the zero-allocation invariant of DESIGN.md §9). Ties resolve to the
    /// lowest way index, exactly like [`ReplacementPolicy::choose_victim`].
    ///
    /// # Panics
    ///
    /// Panics if `ways` yields no items.
    #[must_use]
    pub fn choose_victim_from<I>(self, ways: I, tick: u64) -> usize
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut count = 0usize;
        let mut min_last_use = (0usize, u64::MAX);
        let mut min_inserted = (0usize, u64::MAX);
        for (i, (last_use, inserted)) in ways.into_iter().enumerate() {
            count += 1;
            if last_use < min_last_use.1 {
                min_last_use = (i, last_use);
            }
            if inserted < min_inserted.1 {
                min_inserted = (i, inserted);
            }
        }
        assert!(count > 0, "cannot choose a victim among zero ways");
        match self {
            ReplacementPolicy::Lru => min_last_use.0,
            ReplacementPolicy::Fifo => min_inserted.0,
            ReplacementPolicy::Random => {
                // SplitMix64 step keeps the choice deterministic per tick.
                let mut z = tick.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % count as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_picks_oldest_touch() {
        let last_use = [10, 3, 7, 9];
        let inserted = [0, 0, 0, 0];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&last_use, &inserted, 0), 1);
    }

    #[test]
    fn fifo_picks_oldest_insertion() {
        let last_use = [10, 3, 7, 9];
        let inserted = [5, 9, 2, 8];
        assert_eq!(ReplacementPolicy::Fifo.choose_victim(&last_use, &inserted, 0), 2);
    }

    #[test]
    fn random_is_deterministic_per_tick_and_in_range() {
        let last_use = [0, 0, 0, 0];
        let inserted = [0, 0, 0, 0];
        let a = ReplacementPolicy::Random.choose_victim(&last_use, &inserted, 42);
        let b = ReplacementPolicy::Random.choose_victim(&last_use, &inserted, 42);
        assert_eq!(a, b);
        assert!(a < 4);
    }

    #[test]
    fn lru_ties_resolve_to_lowest_way() {
        let last_use = [5, 5, 5];
        let inserted = [0, 0, 0];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&last_use, &inserted, 0), 0);
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn empty_ways_panics() {
        let _ = ReplacementPolicy::Lru.choose_victim(&[], &[], 0);
    }

    proptest! {
        #[test]
        fn victim_is_always_in_range(
            ways in 1usize..16,
            tick in any::<u64>(),
            policy in prop::sample::select(vec![ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random])
        ) {
            let last_use: Vec<u64> = (0..ways as u64).collect();
            let inserted: Vec<u64> = (0..ways as u64).rev().collect();
            let v = policy.choose_victim(&last_use, &inserted, tick);
            prop_assert!(v < ways);
        }

        #[test]
        fn lru_never_evicts_most_recent(ways in 2usize..16, touches in proptest::collection::vec(0u64..1000, 2..16)) {
            let ways = ways.min(touches.len());
            let last_use = &touches[..ways];
            let inserted = vec![0u64; ways];
            let victim = ReplacementPolicy::Lru.choose_victim(last_use, &inserted, 0);
            let max_pos = last_use.iter().enumerate().max_by_key(|(_, &v)| v).map(|(i, _)| i).unwrap();
            if last_use.iter().filter(|&&v| v == last_use[max_pos]).count() == 1 && last_use[victim] != last_use[max_pos] {
                prop_assert_ne!(victim, max_pos);
            }
        }
    }
}
