//! Cache geometry: size, associativity and block size bookkeeping.

use lnuca_types::{Addr, ConfigError};
use serde::{Deserialize, Serialize};

/// The geometric parameters of a set-associative cache and the address
/// slicing they imply.
///
/// # Example
///
/// ```
/// use lnuca_mem::CacheGeometry;
/// use lnuca_types::Addr;
///
/// // An 8 KB, 2-way, 32 B-block L-NUCA tile.
/// let g = CacheGeometry::new(8 * 1024, 2, 32)?;
/// assert_eq!(g.sets(), 128);
/// assert_eq!(g.lines(), 256);
/// let a = Addr(0x1_2345);
/// assert_eq!(g.set_index(a), ((0x1_2345u64 >> 5) % 128) as usize);
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: usize,
    block_size: u64,
    sets: usize,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` bytes, `ways`-way
    /// set-associative, with `block_size`-byte blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is zero, if `size_bytes` or
    /// `block_size` is not a power of two, or if the implied number of sets
    /// is not a positive power of two.
    pub fn new(size_bytes: u64, ways: usize, block_size: u64) -> Result<Self, ConfigError> {
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "size_bytes",
                format!("must be a nonzero power of two, got {size_bytes}"),
            ));
        }
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(ConfigError::new(
                "block_size",
                format!("must be a nonzero power of two, got {block_size}"),
            ));
        }
        if ways == 0 {
            return Err(ConfigError::new("ways", "must be nonzero"));
        }
        let lines = size_bytes / block_size;
        if lines == 0 || lines % ways as u64 != 0 {
            return Err(ConfigError::new(
                "ways",
                format!("{ways} ways do not evenly divide {lines} lines"),
            ));
        }
        let sets = lines / ways as u64;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(
                "size_bytes",
                format!("implied set count {sets} is not a power of two"),
            ));
        }
        Ok(CacheGeometry {
            size_bytes,
            ways,
            block_size,
            sets: sets as usize,
        })
    }

    /// Fully-associative geometry: a single set holding `lines` blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `lines` is zero or `block_size` is not a
    /// power of two.
    pub fn fully_associative(lines: usize, block_size: u64) -> Result<Self, ConfigError> {
        if lines == 0 {
            return Err(ConfigError::new("lines", "must be nonzero"));
        }
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(ConfigError::new(
                "block_size",
                format!("must be a nonzero power of two, got {block_size}"),
            ));
        }
        Ok(CacheGeometry {
            size_bytes: lines as u64 * block_size,
            ways: lines,
            block_size,
            sets: 1,
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total number of cache lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for an address.
    #[must_use]
    pub fn set_index(&self, addr: Addr) -> usize {
        (addr.block_index(self.block_size) % self.sets as u64) as usize
    }

    /// Tag for an address (the block index bits above the set index).
    #[must_use]
    pub fn tag(&self, addr: Addr) -> u64 {
        addr.block_index(self.block_size) / self.sets as u64
    }

    /// The block-aligned base address corresponding to a (tag, set) pair.
    /// Inverse of [`CacheGeometry::tag`]/[`CacheGeometry::set_index`].
    #[must_use]
    pub fn reconstruct_addr(&self, tag: u64, set: usize) -> Addr {
        let block_index = tag * self.sets as u64 + set as u64;
        Addr(block_index * self.block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometries_are_valid() {
        // L1 / r-tile: 32 KB, 4-way, 32 B.
        let l1 = CacheGeometry::new(32 * 1024, 4, 32).unwrap();
        assert_eq!(l1.sets(), 256);
        // L-NUCA tile: 8 KB, 2-way, 32 B.
        let tile = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
        assert_eq!(tile.sets(), 128);
        // L2: 256 KB, 8-way, 64 B.
        let l2 = CacheGeometry::new(256 * 1024, 8, 64).unwrap();
        assert_eq!(l2.sets(), 512);
        // L3: 8 MB, 16-way, 128 B.
        let l3 = CacheGeometry::new(8 * 1024 * 1024, 16, 128).unwrap();
        assert_eq!(l3.sets(), 4096);
        // D-NUCA bank: 256 KB, 2-way, 128 B.
        let bank = CacheGeometry::new(256 * 1024, 2, 128).unwrap();
        assert_eq!(bank.sets(), 1024);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(CacheGeometry::new(0, 2, 32).is_err());
        assert!(CacheGeometry::new(3000, 2, 32).is_err());
        assert!(CacheGeometry::new(8 * 1024, 0, 32).is_err());
        assert!(CacheGeometry::new(8 * 1024, 2, 48).is_err());
        assert!(CacheGeometry::new(8 * 1024, 3, 32).is_err(), "3 ways over 256 lines leaves a non power-of-two set count");
    }

    #[test]
    fn fully_associative_single_set() {
        let g = CacheGeometry::fully_associative(16, 32).unwrap();
        assert_eq!(g.sets(), 1);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.size_bytes(), 512);
        assert_eq!(g.set_index(Addr(0xdead_beef)), 0);
        assert!(CacheGeometry::fully_associative(0, 32).is_err());
        assert!(CacheGeometry::fully_associative(4, 33).is_err());
    }

    #[test]
    fn tag_and_index_partition_the_address() {
        let g = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
        let a = Addr(0xABCD_EF00);
        let reconstructed = g.reconstruct_addr(g.tag(a), g.set_index(a));
        assert_eq!(reconstructed, a.block_base(32));
    }

    proptest! {
        #[test]
        fn reconstruct_round_trips(addr in any::<u64>()) {
            let g = CacheGeometry::new(256 * 1024, 8, 64).unwrap();
            let a = Addr(addr);
            let r = g.reconstruct_addr(g.tag(a), g.set_index(a));
            prop_assert_eq!(r, a.block_base(64));
        }

        #[test]
        fn set_index_in_range(addr in any::<u64>(), size_log in 13u32..24, ways in prop::sample::select(vec![1usize, 2, 4, 8, 16])) {
            let size = 1u64 << size_log;
            let g = CacheGeometry::new(size, ways, 64).unwrap();
            prop_assert!(g.set_index(Addr(addr)) < g.sets());
        }
    }
}
