//! The main-memory (DRAM) timing model.

use lnuca_types::{ConfigError, Cycle};
use serde::{Deserialize, Serialize};

/// Main memory timing parameters.
///
/// The paper's configuration (Table I): the first 16-byte chunk arrives after
/// 200 cycles and each subsequent chunk after 4 more cycles, over 16-byte
/// wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Cycles until the first chunk of the block arrives.
    pub first_chunk_cycles: u64,
    /// Cycles between subsequent chunks.
    pub inter_chunk_cycles: u64,
    /// Width of the memory channel in bytes (one chunk).
    pub chunk_bytes: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            first_chunk_cycles: 200,
            inter_chunk_cycles: 4,
            chunk_bytes: 16,
        }
    }
}

impl MemoryConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.first_chunk_cycles == 0 {
            return Err(ConfigError::new("first_chunk_cycles", "must be nonzero"));
        }
        if self.inter_chunk_cycles == 0 {
            return Err(ConfigError::new("inter_chunk_cycles", "must be nonzero"));
        }
        if self.chunk_bytes == 0 || !self.chunk_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "chunk_bytes",
                format!("must be a nonzero power of two, got {}", self.chunk_bytes),
            ));
        }
        Ok(())
    }

    /// Unloaded latency for fetching `block_bytes` bytes.
    #[must_use]
    pub fn block_latency(&self, block_bytes: u64) -> u64 {
        let chunks = block_bytes.div_ceil(self.chunk_bytes).max(1);
        self.first_chunk_cycles + (chunks - 1) * self.inter_chunk_cycles
    }
}

/// A fixed-latency main memory with a single data channel.
///
/// Requests pay the configured first-chunk latency and then occupy the data
/// channel for the duration of the block transfer, so back-to-back misses
/// observe queueing delay — the paper relies on this to model miss bursts
/// realistically.
///
/// # Example
///
/// ```
/// use lnuca_mem::{MainMemory, MemoryConfig};
/// use lnuca_types::Cycle;
///
/// let mut memory = MainMemory::new(MemoryConfig::default())?;
/// let ready = memory.access(Cycle(0), 128);
/// assert_eq!(ready, Cycle(228)); // 200 + 7 * 4
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MainMemory {
    config: MemoryConfig,
    channel_free_at: Cycle,
    accesses: u64,
    busy_cycles: u64,
}

impl MainMemory {
    /// Creates a memory model from its configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn new(config: MemoryConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(MainMemory {
            config,
            channel_free_at: Cycle::ZERO,
            accesses: 0,
            busy_cycles: 0,
        })
    }

    /// The configuration this memory was built with.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Issues a block fetch of `block_bytes` at `now` and returns the cycle
    /// at which the whole block is available. Channel contention from earlier
    /// transfers delays the start of this one.
    pub fn access(&mut self, now: Cycle, block_bytes: u64) -> Cycle {
        self.accesses += 1;
        let chunks = block_bytes.div_ceil(self.config.chunk_bytes).max(1);
        let transfer = (chunks - 1) * self.config.inter_chunk_cycles;
        // The transfer can start once the row access completes and the
        // channel is free.
        let data_start = (now + self.config.first_chunk_cycles).max(self.channel_free_at);
        let done = data_start + transfer;
        self.channel_free_at = done + self.config.inter_chunk_cycles;
        self.busy_cycles += transfer + self.config.inter_chunk_cycles;
        done
    }

    /// Total block fetches served.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles the data channel was occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table1() {
        let cfg = MemoryConfig::default();
        assert_eq!(cfg.first_chunk_cycles, 200);
        assert_eq!(cfg.inter_chunk_cycles, 4);
        assert_eq!(cfg.chunk_bytes, 16);
        // 128-byte L3 block: 200 + 7*4.
        assert_eq!(cfg.block_latency(128), 228);
        // 32-byte block: 200 + 1*4.
        assert_eq!(cfg.block_latency(32), 204);
    }

    #[test]
    fn validation_rejects_zeroes() {
        let mut cfg = MemoryConfig::default();
        cfg.first_chunk_cycles = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MemoryConfig::default();
        cfg.chunk_bytes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MemoryConfig::default();
        cfg.chunk_bytes = 24;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn isolated_access_has_unloaded_latency() {
        let mut m = MainMemory::new(MemoryConfig::default()).unwrap();
        assert_eq!(m.access(Cycle(100), 128), Cycle(328));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn back_to_back_accesses_queue_on_the_channel() {
        let mut m = MainMemory::new(MemoryConfig::default()).unwrap();
        let first = m.access(Cycle(0), 128);
        let second = m.access(Cycle(0), 128);
        assert_eq!(first, Cycle(228));
        // Second transfer cannot start until the channel frees (cycle 232).
        assert_eq!(second, Cycle(232 + 28));
        assert!(m.busy_cycles() > 0);
    }

    #[test]
    fn widely_spaced_accesses_do_not_interfere() {
        let mut m = MainMemory::new(MemoryConfig::default()).unwrap();
        let first = m.access(Cycle(0), 64);
        let second = m.access(Cycle(10_000), 64);
        assert_eq!(first, Cycle(212));
        assert_eq!(second, Cycle(10_212));
    }

    #[test]
    fn tiny_blocks_still_pay_first_chunk() {
        let mut m = MainMemory::new(MemoryConfig::default()).unwrap();
        assert_eq!(m.access(Cycle(0), 8), Cycle(200));
    }
}
