//! Graceful-drain chaos test at the service layer: SIGTERM-equivalent
//! drain lands mid-study, and a restarted daemon resumes the journal
//! **byte-identically** — the service-level extension of the study-level
//! kill-and-resume guarantees in `crates/verify/tests/chaos.rs` and the
//! CI SIGKILL smoke. (The real SIGTERM → exit-0 path of the daemon binary
//! is exercised by the CI serve job and the hammer's `--drain-pid` phase.)

use lnuca_bench::cli::{self, ResolvedScenario};
use lnuca_serve::{JobState, ServeConfig, Server, Submission};
use lnuca_sim::experiments::{ExperimentOptions, Study};
use lnuca_sim::scenario::{self, Scenario};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A fresh scratch directory under the target-adjacent tmp root. No
/// timestamps: process id + a counter keep concurrent test binaries apart.
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lnuca-serve-drain-{}-{}-{tag}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A one-configuration, many-run document: enough runs that a drain
/// triggered right after the first journal record lands mid-study.
fn multi_run_doc(seed: u64) -> String {
    let mut scenario = scenario::builtin("paper-conventional").expect("builtin scenario");
    scenario.plan.configs.truncate(1);
    let mut options = ExperimentOptions::quick();
    options.seed = seed;
    options.instructions = 150_000;
    options.benchmarks_per_suite = Some(3);
    options.threads = 1;
    scenario.plan.options = options;
    scenario.to_json()
}

fn accepted_id(submission: Submission) -> u64 {
    match submission {
        Submission::Accepted { id, .. } => id,
        other => panic!("expected Accepted, got {other:?}"),
    }
}

#[test]
fn drain_mid_study_journals_and_a_restarted_daemon_resumes_byte_identical() {
    let journal_dir = scratch_dir("resume");
    let document = multi_run_doc(900);

    // The report an uninterrupted run produces — computed through the
    // exact resolution path the daemon uses.
    let resolved = ResolvedScenario {
        scenario: Scenario::from_json(&document).expect("document parses"),
        from_registry: false,
    };
    let plan = cli::resolved_plan(&resolved).expect("plan resolves");
    let study = Study::run(&plan).expect("uninterrupted run");
    let expected = scenario::report_value(&plan, &study).to_pretty();

    // Daemon A: submit, wait for the first journal record, drain.
    let server_a = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        cache_capacity: 4,
        journal_dir: Some(journal_dir.clone()),
        baseline_path: None,
    });
    let digest = match server_a.submit_document(&document, 0) {
        Submission::Accepted { id, digest } => {
            let journal_path = journal_dir.join(format!("{digest:016x}.jsonl"));
            // Poll for the first *data* record (the journal starts with a
            // header line) so the drain provably lands mid-study.
            let deadline = Instant::now() + Duration::from_secs(120);
            loop {
                let records = std::fs::read_to_string(&journal_path)
                    .map(|text| text.lines().count())
                    .unwrap_or(0);
                if records >= 2 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "no journal record appeared within 120s"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            server_a.begin_drain();
            let snapshot = server_a.wait(id, Duration::from_secs(300)).expect("job exists");
            assert!(
                snapshot.state.is_terminal(),
                "drain must terminate the job, got {:?}",
                snapshot.state
            );
            if snapshot.state == JobState::Shutdown {
                let report = snapshot.report.expect("shutdown still reports");
                assert!(
                    report.contains("\"shutdown\""),
                    "unstarted runs land as shutdown failure rows"
                );
            } else {
                // The study may have raced to completion before the stop
                // was observed; the resume below is then a pure cache of
                // journal replay — still a valid byte-identity check.
                assert_eq!(snapshot.state, JobState::Done);
            }
            digest
        }
        other => panic!("expected Accepted, got {other:?}"),
    };
    server_a.drain_join();
    let journal_path = journal_dir.join(format!("{digest:016x}.jsonl"));

    // Daemon B: same journal dir, same document. The worker resumes the
    // journal (completed runs replayed, the rest simulated) and the final
    // report is byte-identical to the uninterrupted run.
    let server_b = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        cache_capacity: 4,
        journal_dir: Some(journal_dir.clone()),
        baseline_path: None,
    });
    let id = accepted_id(server_b.submit_document(&document, 0));
    let snapshot = server_b.wait(id, Duration::from_secs(300)).expect("job exists");
    assert_eq!(snapshot.state, JobState::Done, "error: {:?}", snapshot.error);
    let report = snapshot.report.expect("done jobs report");
    assert_eq!(
        &*report, &expected,
        "resumed report differs from the uninterrupted run"
    );
    assert!(
        !journal_path.exists(),
        "a completed job's journal is consumed"
    );

    // And the resumed result is cached like any other completed job.
    match server_b.submit_document(&document, 0) {
        Submission::CacheHit { report: hit, .. } => assert_eq!(&*hit, &*report),
        other => panic!("expected CacheHit after the resume, got {other:?}"),
    }
    server_b.begin_drain();
    server_b.drain_join();
    let _ = std::fs::remove_dir_all(&journal_dir);
}
