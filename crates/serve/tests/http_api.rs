//! End-to-end HTTP tests: a real daemon (accept loop + router + worker
//! pool) on an ephemeral port, driven through the same client codec the
//! hammer harness uses.

use lnuca_serve::{http, router, ServeConfig, Server};
use lnuca_sim::experiments::ExperimentOptions;
use lnuca_sim::scenario;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);

fn doc(seed: u64) -> String {
    let mut scenario = scenario::builtin("paper-conventional").expect("builtin scenario");
    scenario.plan.configs.truncate(1);
    let mut options = ExperimentOptions::quick();
    options.seed = seed;
    options.benchmarks_per_suite = Some(1);
    options.threads = 1;
    scenario.plan.options = options;
    scenario.to_json()
}

/// Boots a daemon on an ephemeral port; returns (server, addr, loop handle).
fn boot() -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_depth: 4,
        cache_capacity: 8,
        journal_dir: None,
        baseline_path: None,
    });
    let loop_server = Arc::clone(&server);
    let handle = std::thread::spawn(move || {
        router::run_until_drained(&loop_server, listener).expect("serve loop");
    });
    (server, addr, handle)
}

#[test]
fn http_surface_submits_polls_caches_cancels_and_drains() {
    let (server, addr, handle) = boot();

    // Liveness and metrics respond before any job exists.
    let health = http::request(&addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"ok\""));
    let metrics = http::request(&addr, "GET", "/metrics", b"", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("lnuca_serve_queue_bound 4"));

    // Submit-and-wait: one round trip, report body, miss header.
    let body = doc(9001);
    let cold = http::request(&addr, "POST", "/v1/jobs?wait=120", body.as_bytes(), TIMEOUT)
        .expect("cold submit");
    assert_eq!(cold.status, 200, "body: {}", cold.text());
    assert_eq!(cold.header("x-lnuca-cache"), Some("miss"));
    assert_eq!(cold.header("x-lnuca-job-state"), Some("done"));
    let report = serde::json::parse(&cold.text()).expect("report parses");
    scenario::validate_report(&report).expect("report validates");

    // Resubmission: cache hit, byte-identical body, hit header.
    let warm = http::request(&addr, "POST", "/v1/jobs?wait=120", body.as_bytes(), TIMEOUT)
        .expect("warm submit");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-lnuca-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "hit must be byte-identical");

    // Async submit + poll + DELETE round trip.
    let async_body = doc(9002);
    let accepted = http::request(&addr, "POST", "/v1/jobs", async_body.as_bytes(), TIMEOUT)
        .expect("async submit");
    assert_eq!(accepted.status, 202);
    let parsed = serde::json::parse(&accepted.text()).expect("ticket parses");
    let id = parsed.get("id").and_then(|v| v.as_u64()).expect("ticket id");
    let polled = http::request(&addr, "GET", &format!("/v1/jobs/{id}"), b"", TIMEOUT)
        .expect("poll");
    assert_eq!(polled.status, 200);
    let cancel = http::request(&addr, "DELETE", &format!("/v1/jobs/{id}"), b"", TIMEOUT)
        .expect("cancel");
    assert_eq!(cancel.status, 200);

    // Registry-name submission (cancelled immediately — full-scale plans
    // are too heavy for a unit test to run to completion).
    let named = http::request(&addr, "POST", "/v1/scenarios/ln3-no-l3", b"", TIMEOUT)
        .expect("registry submit");
    assert_eq!(named.status, 202);
    let ticket = serde::json::parse(&named.text()).expect("ticket parses");
    let named_id = ticket.get("id").and_then(|v| v.as_u64()).expect("ticket id");
    let _ = http::request(&addr, "DELETE", &format!("/v1/jobs/{named_id}"), b"", TIMEOUT);

    // Error surface: bad JSON is 400, unknown routes/jobs are 404.
    let bad = http::request(&addr, "POST", "/v1/jobs", b"{ nope", TIMEOUT).expect("bad doc");
    assert_eq!(bad.status, 400);
    let missing = http::request(&addr, "GET", "/v1/jobs/123456", b"", TIMEOUT).expect("missing");
    assert_eq!(missing.status, 404);
    let nowhere = http::request(&addr, "GET", "/nowhere", b"", TIMEOUT).expect("nowhere");
    assert_eq!(nowhere.status, 404);
    let unknown_name = http::request(&addr, "POST", "/v1/scenarios/blorp", b"", TIMEOUT)
        .expect("unknown name");
    assert_eq!(unknown_name.status, 400);

    // Drain: the loop notices `begin_drain` (the in-process stand-in for
    // SIGTERM — the signal path itself is covered by the CI serve job),
    // finishes in-flight jobs and returns; afterwards the port is closed.
    server.begin_drain();
    handle.join().expect("serve loop exits cleanly");
    assert!(
        http::request(&addr, "GET", "/healthz", b"", Duration::from_secs(2)).is_err(),
        "listener must be closed after the drain"
    );
}
