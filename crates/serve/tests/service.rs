//! In-process integration tests of the daemon core: admission control,
//! cancellation, panic quarantine, and the semantic result cache.
//!
//! These drive [`Server`] directly (no sockets) so every timing-sensitive
//! step can poll job state instead of racing a TCP accept loop; the HTTP
//! surface on top is covered by `tests/http_api.rs` and the CI serve job.

use lnuca_serve::{JobState, ServeConfig, Server, Submission};
use lnuca_sim::experiments::ExperimentOptions;
use lnuca_sim::scenario;
use lnuca_types::RUN_STATUSES;
use lnuca_verify::chaos::{with_fault, ScheduledFault};
use std::time::{Duration, Instant};

/// A small single-configuration scenario document. Distinct `seed`s give
/// distinct semantic digests; `instructions` scales how long a job holds
/// its worker.
fn doc(seed: u64, instructions: u64) -> String {
    let mut scenario = scenario::builtin("paper-conventional").expect("builtin scenario");
    scenario.plan.configs.truncate(1);
    let mut options = ExperimentOptions::quick();
    options.seed = seed;
    options.instructions = instructions;
    options.benchmarks_per_suite = Some(1);
    options.threads = 1;
    scenario.plan.options = options;
    scenario.to_json()
}

fn config(workers: usize, queue_depth: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth,
        cache_capacity: 8,
        journal_dir: None,
        baseline_path: None,
    }
}

fn accepted_id(submission: Submission) -> u64 {
    match submission {
        Submission::Accepted { id, .. } => id,
        other => panic!("expected Accepted, got {other:?}"),
    }
}

fn wait_terminal(server: &Server, id: u64) -> lnuca_serve::JobSnapshot {
    let snapshot = server
        .wait(id, Duration::from_secs(300))
        .expect("job exists");
    assert!(
        snapshot.state.is_terminal(),
        "job {id} still {:?} after 300s",
        snapshot.state
    );
    snapshot
}

/// Polls until job `id` is claimed by a worker (deterministic setup for
/// the queue-pressure tests: once the slow job runs, submissions land in
/// the queue, not on a worker).
fn wait_running(server: &Server, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = server.snapshot(id).expect("job exists").state;
        if state == JobState::Running {
            return;
        }
        assert!(
            !state.is_terminal(),
            "job {id} finished ({state:?}) before the test could build queue pressure"
        );
        assert!(Instant::now() < deadline, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn completed_job_is_cached_and_resubmission_is_byte_identical() {
    let server = Server::start(config(2, 8));
    let document = doc(11, 5_000);

    let id = accepted_id(server.submit_document(&document, 0));
    let snapshot = wait_terminal(&server, id);
    assert_eq!(snapshot.state, JobState::Done);
    let report = snapshot.report.expect("done jobs carry a report");
    let parsed = serde::json::parse(&report).expect("report is JSON");
    scenario::validate_report(&parsed).expect("report validates");

    // Same document again: served from the cache, byte for byte, with no
    // new job.
    match server.submit_document(&document, 0) {
        Submission::CacheHit { report: hit, .. } => assert_eq!(
            &*hit, &*report,
            "cache hit must be byte-identical to the run that filled it"
        ),
        other => panic!("expected CacheHit, got {other:?}"),
    }

    // An execution-knob change (threads) keeps the semantic digest: still
    // a hit, still the same bytes.
    let mut knob_variant = scenario::builtin("paper-conventional").expect("builtin scenario");
    knob_variant.plan.configs.truncate(1);
    let mut options = ExperimentOptions::quick();
    options.seed = 11;
    options.instructions = 5_000;
    options.benchmarks_per_suite = Some(1);
    options.threads = 2;
    knob_variant.plan.options = options;
    match server.submit_document(&knob_variant.to_json(), 0) {
        Submission::CacheHit { report: hit, .. } => assert_eq!(&*hit, &*report),
        other => panic!("expected CacheHit for an execution-knob variant, got {other:?}"),
    }

    // A semantic change (seed) misses and runs fresh.
    let id2 = accepted_id(server.submit_document(&doc(12, 5_000), 0));
    let snapshot2 = wait_terminal(&server, id2);
    assert_eq!(snapshot2.state, JobState::Done);
    assert_ne!(
        snapshot2.report.as_deref(),
        Some(&*report),
        "a different seed is a different report"
    );

    let (hits, misses, _) = (
        server.metrics().cache_hits_total.load(std::sync::atomic::Ordering::Relaxed),
        server.metrics().cache_misses_total.load(std::sync::atomic::Ordering::Relaxed),
        (),
    );
    assert_eq!(hits, 2, "two hits (identical + knob variant)");
    assert_eq!(misses, 2, "two misses (first submission + seed change)");

    server.begin_drain();
    server.drain_join();
}

#[test]
fn evicted_digest_reruns_and_never_serves_stale_bytes() {
    // Capacity 1: running B evicts A. Resubmitting A must be a fresh run
    // (never a stale hit) and — runs being deterministic — byte-identical
    // to the first A run.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 8,
        cache_capacity: 1,
        journal_dir: None,
        baseline_path: None,
    });
    let doc_a = doc(21, 5_000);
    let doc_b = doc(22, 5_000);

    let a1 = wait_terminal(&server, accepted_id(server.submit_document(&doc_a, 0)));
    assert_eq!(a1.state, JobState::Done);
    let b = wait_terminal(&server, accepted_id(server.submit_document(&doc_b, 0)));
    assert_eq!(b.state, JobState::Done);

    let a2 = match server.submit_document(&doc_a, 0) {
        Submission::Accepted { id, .. } => wait_terminal(&server, id),
        Submission::CacheHit { .. } => panic!("A was evicted; a hit would be stale"),
        other => panic!("unexpected submission outcome {other:?}"),
    };
    assert_eq!(a2.state, JobState::Done);
    assert_eq!(
        a1.report, a2.report,
        "the re-run after eviction reproduces the original bytes"
    );
    let evictions = server
        .metrics()
        .cache_evictions_total
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(evictions >= 1, "the eviction is counted");
    server.begin_drain();
    server.drain_join();
}

#[test]
fn admission_control_rejects_work_past_the_queue_bound() {
    // One worker, queue depth 2: with the worker pinned on a slow job, the
    // third queued submission must be refused.
    let server = Server::start(config(1, 2));
    let slow = accepted_id(server.submit_document(&doc(100, 300_000), 0));
    wait_running(&server, slow);

    let q1 = accepted_id(server.submit_document(&doc(101, 5_000), 0));
    let q2 = accepted_id(server.submit_document(&doc(102, 5_000), 0));
    match server.submit_document(&doc(103, 5_000), 0) {
        // No job has completed yet, so there is no service-time sample for
        // the drain ETA; the advice must still be the nonzero floor.
        Submission::Busy { retry_after_secs } => assert_eq!(retry_after_secs, 1),
        other => panic!("expected Busy at the bound, got {other:?}"),
    }
    let rejected = server
        .metrics()
        .rejected_total
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected, 1, "the rejection is counted");

    // The refused submission cost nothing: everything admitted completes.
    for id in [slow, q1, q2] {
        assert_eq!(wait_terminal(&server, id).state, JobState::Done);
    }

    // With completed-job samples on record, the average wall time of these
    // tiny studies is far below a second — the drain ETA must round *up*
    // to 1, never down to `Retry-After: 0` (the hot-retry-loop bug).
    let slow2 = accepted_id(server.submit_document(&doc(110, 300_000), 0));
    wait_running(&server, slow2);
    let q3 = accepted_id(server.submit_document(&doc(111, 5_000), 0));
    let q4 = accepted_id(server.submit_document(&doc(112, 5_000), 0));
    match server.submit_document(&doc(113, 5_000), 0) {
        Submission::Busy { retry_after_secs } => {
            assert!(retry_after_secs >= 1, "a sub-second ETA clamps to 1, got {retry_after_secs}");
        }
        other => panic!("expected Busy at the bound, got {other:?}"),
    }
    for id in [slow2, q3, q4] {
        assert_eq!(wait_terminal(&server, id).state, JobState::Done);
    }
    server.begin_drain();
    server.drain_join();
}

#[test]
fn cancelling_kills_exactly_the_targeted_job() {
    let server = Server::start(config(1, 8));
    let slow = accepted_id(server.submit_document(&doc(200, 300_000), 0));
    wait_running(&server, slow);

    let doomed = accepted_id(server.submit_document(&doc(201, 5_000), 0));
    let survivor = accepted_id(server.submit_document(&doc(202, 5_000), 0));

    assert_eq!(server.cancel(doomed), Some(JobState::Queued));
    let snapshot = wait_terminal(&server, doomed);
    assert_eq!(snapshot.state, JobState::Cancelled);
    assert!(snapshot.report.is_none(), "a queued cancel never simulates");

    // Cancelling a terminal job is a no-op; unknown ids are None.
    assert_eq!(server.cancel(doomed), Some(JobState::Cancelled));
    assert_eq!(server.cancel(999_999), None);

    assert_eq!(wait_terminal(&server, survivor).state, JobState::Done);
    assert_eq!(wait_terminal(&server, slow).state, JobState::Done);
    server.begin_drain();
    server.drain_join();
}

#[test]
fn cancelling_a_running_job_stops_it_at_run_granularity() {
    let server = Server::start(config(1, 8));
    // Two runs (two suites × 1 benchmark): cancel lands after the claim,
    // so completed runs stay and unstarted runs fail as `cancelled`.
    let mut scenario = scenario::builtin("paper-conventional").expect("builtin scenario");
    scenario.plan.configs.truncate(1);
    let mut options = ExperimentOptions::quick();
    options.seed = 300;
    options.instructions = 400_000;
    options.benchmarks_per_suite = Some(2);
    options.threads = 1;
    scenario.plan.options = options;

    let id = accepted_id(server.submit_document(&scenario.to_json(), 0));
    wait_running(&server, id);
    assert_eq!(server.cancel(id), Some(JobState::Running));
    let snapshot = wait_terminal(&server, id);
    assert_eq!(snapshot.state, JobState::Cancelled);
    let report = snapshot.report.expect("a running cancel still reports");
    let parsed = serde::json::parse(&report).expect("report is JSON");
    scenario::validate_report(&parsed).expect("cancelled reports validate");
    assert!(
        report.contains("\"cancelled\""),
        "unstarted runs land as cancelled failure rows"
    );
    assert!(RUN_STATUSES.contains(&"cancelled"));
    server.begin_drain();
    server.drain_join();
}

#[test]
fn poisoned_scenario_fails_its_own_job_and_the_worker_survives() {
    let server = Server::start(config(1, 8));
    let poison_seed = 777_777;
    let (poisoned, healthy) = with_fault(
        ScheduledFault {
            seed: Some(poison_seed),
            first_attempt_only: false,
            ..ScheduledFault::any()
        },
        || {
            let poisoned = accepted_id(server.submit_document(&doc(poison_seed, 5_000), 0));
            let healthy = accepted_id(server.submit_document(&doc(301, 5_000), 0));
            (wait_terminal(&server, poisoned), wait_terminal(&server, healthy))
        },
    );
    assert_eq!(
        poisoned.state,
        JobState::Degraded,
        "the injected panic quarantines into the poisoned job's own report"
    );
    let report = poisoned.report.expect("degraded jobs still report");
    assert!(report.contains("\"panic\""), "failure rows carry the panic status");
    assert_eq!(healthy.state, JobState::Done, "the sibling job is untouched");

    // The worker that absorbed the poison is still alive and serves the
    // next submission — and the degraded report was *not* cached.
    match server.submit_document(&doc(poison_seed, 5_000), 0) {
        Submission::Accepted { id, .. } => {
            assert_eq!(wait_terminal(&server, id).state, JobState::Done);
        }
        other => panic!("degraded reports must not be cached, got {other:?}"),
    }
    server.begin_drain();
    server.drain_join();
}

#[test]
fn draining_refuses_new_work_and_fails_queued_jobs_as_shutdown() {
    let server = Server::start(config(1, 8));
    let slow = accepted_id(server.submit_document(&doc(400, 300_000), 0));
    wait_running(&server, slow);
    let queued = accepted_id(server.submit_document(&doc(401, 5_000), 0));

    server.begin_drain();
    match server.submit_document(&doc(402, 5_000), 0) {
        Submission::Draining => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    let queued_snapshot = wait_terminal(&server, queued);
    assert_eq!(queued_snapshot.state, JobState::Shutdown);
    // Without a journal the drain lets the running job finish whole.
    assert_eq!(wait_terminal(&server, slow).state, JobState::Done);
    server.drain_join();

    let shutdowns = server
        .metrics()
        .jobs_shutdown_total
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shutdowns, 1);

    // A cache hit is still served mid-drain: stored bytes admit no work.
    let document = doc(400, 300_000);
    match server.submit_document(&document, 0) {
        Submission::CacheHit { .. } => {}
        other => panic!("expected a drain-time CacheHit, got {other:?}"),
    }
}

#[test]
fn priority_orders_the_queue_and_ties_stay_fifo() {
    let server = Server::start(config(1, 8));
    let slow = accepted_id(server.submit_document(&doc(500, 300_000), 0));
    wait_running(&server, slow);

    // Queue (one worker busy): submitted low-first, expected to *run*
    // high-first, ties FIFO. Each queued job is long enough that its
    // Running phase cannot slip between two 1ms polls.
    let low = accepted_id(server.submit_document(&doc(501, 150_000), 0));
    let tie_a = accepted_id(server.submit_document(&doc(502, 150_000), 5));
    let tie_b = accepted_id(server.submit_document(&doc(503, 150_000), 5));
    let high = accepted_id(server.submit_document(&doc(504, 150_000), 9));

    let expected = [high, tie_a, tie_b, low];
    let mut claim_order: Vec<u64> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        for &id in &expected {
            if !claim_order.contains(&id) {
                let state = server.snapshot(id).expect("job exists").state;
                if state == JobState::Running || state.is_terminal() {
                    claim_order.push(id);
                }
            }
        }
        if expected
            .iter()
            .all(|&id| server.snapshot(id).expect("job exists").state.is_terminal())
        {
            break;
        }
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        claim_order, expected,
        "claims must follow priority desc, FIFO within a level"
    );
    for &id in &expected {
        assert_eq!(wait_terminal(&server, id).state, JobState::Done);
    }
    server.begin_drain();
    server.drain_join();
}

#[test]
fn invalid_documents_and_unknown_names_are_rejected_without_a_job() {
    let server = Server::start(config(1, 2));
    match server.submit_document("{ not json", 0) {
        Submission::Invalid(_) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
    match server.submit_document("{\"schema\": \"wrong/v9\", \"name\": \"x\", \"configs\": []}", 0)
    {
        Submission::Invalid(message) => {
            assert!(message.contains("lnuca-scenario/v1"), "got: {message}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    match server.submit_name("no-such-scenario", 0) {
        Submission::Invalid(_) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert_eq!(
        server
            .metrics()
            .jobs_submitted_total
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "rejected documents never become jobs"
    );
    server.begin_drain();
    server.drain_join();
}

/// The registry path mirrors `lnuca run <name>`: regenerated configs under
/// layered env. Submitting a registry name twice hits the cache.
#[test]
fn registry_submission_runs_and_caches_like_the_cli() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 8,
        journal_dir: None,
        baseline_path: None,
    });
    // `ln3-no-l3` is the smallest builtin (2 configs); still heavy at full
    // scale, so this test only asserts admission + digest plumbing, then
    // cancels before simulating for long.
    let first = match server.submit_name("ln3-no-l3", 0) {
        Submission::Accepted { id, digest } => {
            assert_ne!(digest, 0);
            id
        }
        other => panic!("expected Accepted, got {other:?}"),
    };
    let _ = server.cancel(first);
    let snapshot = wait_terminal(&server, first);
    assert!(matches!(
        snapshot.state,
        JobState::Cancelled | JobState::Done
    ));
    server.begin_drain();
    server.drain_join();
}
