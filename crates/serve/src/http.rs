//! A minimal HTTP/1.1 server- and client-side codec over std TCP.
//!
//! The workspace builds offline (DESIGN.md §8), so there is no hyper or
//! reqwest here — just enough of RFC 9112 for the daemon's needs: one
//! request per connection (`Connection: close` both ways), `Content-Length`
//! framing only (no chunked encoding), a capped header block and a capped
//! body. The same codec serves the daemon (`router`), the hammer harness
//! and the integration tests, so client and server cannot drift apart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request-line + header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request or response body, in bytes. Scenario documents
/// are a few KiB; reports for large matrices reach tens of KiB.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request (or response, on the client side).
#[derive(Debug)]
pub struct Message {
    /// `GET` / `POST` / `DELETE` for requests; empty for responses.
    pub method: String,
    /// The request target (path + optional query); empty for responses.
    pub target: String,
    /// Response status code; 0 for requests.
    pub status: u16,
    /// Header names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Message {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body decoded as UTF-8 (lossy — the daemon only ever produces
    /// UTF-8, so lossiness can only surface a client's own bad bytes).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one HTTP/1.1 message from `stream`.
///
/// `expect_response` selects the start-line grammar (status line vs request
/// line). Returns a human-readable error on malformed input or when a cap
/// is exceeded; the caller maps that to `400 Bad Request` (server side) or
/// a harness failure (client side).
pub fn read_message(stream: &mut TcpStream, expect_response: bool) -> Result<Message, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut head = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before the header block ended".into());
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(format!("header block exceeds {MAX_HEAD_BYTES} bytes"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let start = lines.next().ok_or("empty header block")?;
    let mut message = Message {
        method: String::new(),
        target: String::new(),
        status: 0,
        headers: Vec::new(),
        body: Vec::new(),
    };
    if expect_response {
        // e.g. `HTTP/1.1 200 OK`
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(format!("not an HTTP/1.x status line: {start:?}"));
        }
        message.status = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line: {start:?}"))?;
    } else {
        // e.g. `POST /v1/jobs HTTP/1.1`
        let mut parts = start.split_whitespace();
        message.method = parts.next().unwrap_or("").to_string();
        message.target = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("");
        if message.method.is_empty() || message.target.is_empty() || !version.starts_with("HTTP/1.")
        {
            return Err(format!("bad request line: {start:?}"));
        }
    }
    for raw in lines {
        let (name, value) = raw
            .split_once(':')
            .ok_or_else(|| format!("bad header line: {raw:?}"))?;
        message
            .headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let length: usize = match message.header("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad content-length: {v:?}"))?,
        None => 0,
    };
    if length > MAX_BODY_BYTES {
        return Err(format!("body of {length} bytes exceeds {MAX_BODY_BYTES}"));
    }
    if length > 0 {
        let mut body = vec![0u8; length];
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("read body: {e}"))?;
        message.body = body;
    }
    Ok(message)
}

/// Writes an HTTP/1.1 response with the given status, extra headers and
/// body, always `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Performs one client request against `addr` and returns the response.
///
/// `timeout` bounds connect, read and write individually — the hammer
/// harness uses this as its no-deadlock detector: a healthy daemon always
/// answers (even if the answer is 429) well inside the timeout.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<Message, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    stream.write_all(body).map_err(|e| format!("write: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    read_message(&mut stream, true)
}

/// Standard reason phrase for the handful of statuses the daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn round_trips_a_request_and_response_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let req = read_message(&mut stream, false).expect("parse request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.target, "/v1/jobs?priority=2");
            assert_eq!(req.text(), "{\"x\":1}");
            write_response(
                &mut stream,
                429,
                reason(429),
                "application/json",
                &[("retry-after", "1")],
                b"{\"error\":\"queue full\"}",
            )
            .expect("respond");
        });
        let resp = request(
            &addr,
            "POST",
            "/v1/jobs?priority=2",
            b"{\"x\":1}",
            Duration::from_secs(5),
        )
        .expect("request");
        server.join().expect("server thread");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "{\"error\":\"queue full\"}");
    }

    #[test]
    fn rejects_an_oversized_content_length_before_reading_the_body() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let client = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let head = format!(
                "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            );
            stream.write_all(head.as_bytes()).expect("write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let err = read_message(&mut stream, false).expect_err("must reject");
        assert!(err.contains("exceeds"), "got: {err}");
        client.join().expect("client thread");
    }
}
