//! The content-addressed result cache.
//!
//! Completed `lnuca-report/v1` reports are stored under the submission's
//! **semantic plan digest** (`lnuca_sim::journal::plan_digest`): the FNV-1a
//! content address over schema, instructions, seed, resolved workloads and
//! the full configuration specs — and over nothing else, because execution
//! knobs (threads, engine, batch size, watchdogs) cannot change results.
//! Two submissions collide exactly when the engine would produce the same
//! report bytes, so a hit is served **byte-identically** without running
//! anything, and any semantic field change is a guaranteed miss.
//!
//! Eviction is deterministic LRU under a configured capacity: every
//! `get`/`insert` advances a logical tick, the entry with the smallest
//! last-use tick is evicted first, and an evicted digest is simply re-run
//! on resubmission — a stale report can never be served because the digest
//! *is* the content address of its plan.

use std::collections::HashMap;
use std::sync::Arc;

/// One cached report.
struct Entry {
    /// The rendered `lnuca-report/v1` document, byte-exact.
    report: Arc<str>,
    /// Logical time of the last hit or insertion (LRU order).
    last_used: u64,
}

/// A bounded LRU map from semantic plan digest to rendered report.
pub struct ResultCache {
    entries: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` reports (clamped to at
    /// least 1 — a service with no cache at all should not construct one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `digest` up, refreshing its LRU position on a hit.
    pub fn get(&mut self, digest: u64) -> Option<Arc<str>> {
        self.tick += 1;
        match self.entries.get_mut(&digest) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.report))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `report` under `digest`, evicting the least-recently-used
    /// entry when the cache is at capacity. Re-inserting an existing digest
    /// refreshes its LRU position; the stored report is replaced only by a
    /// byte-identical one in practice (runs are deterministic), so either
    /// copy is correct.
    pub fn insert(&mut self, digest: u64, report: Arc<str>) {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&digest) {
            entry.last_used = self.tick;
            entry.report = report;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Deterministic LRU victim: the smallest last-use tick. Ticks
            // are unique (one per operation), so there is never a tie.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(digest, _)| digest)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            digest,
            Entry {
                report,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached reports.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime `(hits, misses, evictions)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_returns_the_exact_bytes_inserted() {
        let mut cache = ResultCache::new(4);
        cache.insert(0xabc, report("{\n  \"x\": 1\n}\n"));
        let hit = cache.get(0xabc).expect("present");
        assert_eq!(&*hit, "{\n  \"x\": 1\n}\n");
        assert_eq!(cache.stats(), (1, 0, 0));
    }

    #[test]
    fn lru_eviction_is_deterministic_and_never_serves_the_victim() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, report("one"));
        cache.insert(2, report("two"));
        assert!(cache.get(1).is_some(), "refresh 1 so 2 is the LRU victim");
        cache.insert(3, report("three"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 1);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, report("one"));
        cache.insert(2, report("two"));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(2).is_some());
    }
}
