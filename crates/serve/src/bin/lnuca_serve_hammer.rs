//! The breaking-point load harness for a live `lnuca-serve` daemon.
//!
//! ```text
//! lnuca-serve-hammer --addr HOST:PORT [--scenario NAME] [--ramp 1,2,4,...]
//!                    [--requests-per-level N] [--out PATH] [--drain-pid PID]
//! ```
//!
//! Three phases against a *running* daemon, asserting the service
//! invariants as it goes and recording the measured breaking points as a
//! JSON document:
//!
//! 1. **cold / warm cache** — submit one scenario twice with `?wait`.
//!    The first response must be a cache miss that runs, the second a
//!    cache hit served **byte-identically** (the harness compares the two
//!    bodies byte for byte).
//! 2. **concurrency ramp** — for each level N, fire N concurrent
//!    submissions with *distinct seeds* (distinct semantic digests, so the
//!    cache cannot absorb them). Every request must complete inside the
//!    client timeout (the no-deadlock invariant: a healthy daemon always
//!    answers, even if the answer is 429), the queue-depth gauge must
//!    never exceed the advertised bound, every `*_total` counter must be
//!    monotone between scrapes, and every 429 must come with
//!    `Retry-After`. The lowest level that drew a 429 is the measured
//!    **admission breaking point**.
//! 3. **sustained stress** — one more burst at the highest ramp level to
//!    observe steady-state throughput, then (with `--drain-pid`) SIGTERM
//!    the daemon mid-load and verify it stops listening within the drain
//!    timeout while the driver (CI) checks the exit status is 0.
//!
//! Any violated invariant exits 1 with the violation on stderr.

use lnuca_serve::http;
use lnuca_sim::scenario;
use serde::json::Value;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Client timeout doubling as the deadlock detector.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

struct Args {
    addr: String,
    scenario: String,
    ramp: Vec<usize>,
    requests_per_level: usize,
    out: Option<String>,
    drain_pid: Option<u32>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        scenario: "paper-conventional".to_owned(),
        ramp: vec![1, 2, 4, 8, 16],
        requests_per_level: 0,
        out: None,
        drain_pid: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => args.addr = iter.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--scenario" => {
                args.scenario = iter.next().ok_or("--scenario needs a name")?.clone();
            }
            "--ramp" => {
                let spec = iter.next().ok_or("--ramp needs N1,N2,...")?;
                args.ramp = spec
                    .split(',')
                    .map(|n| n.trim().parse::<usize>().map_err(|e| format!("--ramp: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.ramp.is_empty() {
                    return Err("--ramp needs at least one level".into());
                }
            }
            "--requests-per-level" => {
                args.requests_per_level = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--requests-per-level needs an integer")?;
            }
            "--out" => args.out = Some(iter.next().ok_or("--out needs a path")?.clone()),
            "--drain-pid" => {
                args.drain_pid = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--drain-pid needs a pid")?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".into());
    }
    Ok(args)
}

/// Value of an unlabelled series in a Prometheus text exposition.
fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|line| {
            line.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|line| line[name.len() + 1..].trim().parse().ok())
}

/// Every monotone counter the harness tracks between scrapes.
const COUNTERS: &[&str] = &[
    "lnuca_serve_requests_total",
    "lnuca_serve_jobs_submitted_total",
    "lnuca_serve_jobs_completed_total",
    "lnuca_serve_jobs_degraded_total",
    "lnuca_serve_jobs_failed_total",
    "lnuca_serve_jobs_cancelled_total",
    "lnuca_serve_jobs_shutdown_total",
    "lnuca_serve_rejected_total",
    "lnuca_serve_cache_hits_total",
    "lnuca_serve_cache_misses_total",
    "lnuca_serve_cache_evictions_total",
];

struct Scraper {
    addr: String,
    last: Vec<(String, f64)>,
    max_queue_depth: f64,
    queue_bound: f64,
}

impl Scraper {
    fn new(addr: &str) -> Self {
        Scraper {
            addr: addr.to_owned(),
            last: Vec::new(),
            max_queue_depth: 0.0,
            queue_bound: f64::INFINITY,
        }
    }

    /// Scrapes `/metrics`, asserting counter monotonicity and the queue
    /// bound against everything seen so far.
    fn scrape(&mut self) -> Result<(), String> {
        let resp = http::request(&self.addr, "GET", "/metrics", b"", CLIENT_TIMEOUT)?;
        if resp.status != 200 {
            return Err(format!("/metrics answered {}", resp.status));
        }
        let text = resp.text();
        let bound = metric(&text, "lnuca_serve_queue_bound")
            .ok_or("queue_bound series missing from /metrics")?;
        self.queue_bound = bound;
        let depth = metric(&text, "lnuca_serve_queue_depth")
            .ok_or("queue_depth series missing from /metrics")?;
        if depth > bound {
            return Err(format!(
                "invariant violated: queue_depth {depth} exceeds the bound {bound}"
            ));
        }
        self.max_queue_depth = self.max_queue_depth.max(depth);
        let mut now = Vec::with_capacity(COUNTERS.len());
        for name in COUNTERS {
            let value =
                metric(&text, name).ok_or_else(|| format!("{name} missing from /metrics"))?;
            if let Some((_, before)) = self.last.iter().find(|(n, _)| n == name) {
                if value < *before {
                    return Err(format!(
                        "invariant violated: counter {name} went backwards ({before} -> {value})"
                    ));
                }
            }
            now.push(((*name).to_owned(), value));
        }
        self.last = now;
        Ok(())
    }

    fn value(&self, name: &str) -> f64 {
        self.last
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }
}

/// The builtin scenario re-seeded so every submission has a distinct
/// semantic digest (the cache cannot absorb ramp load).
fn seeded_document(name: &str, seed: u64) -> Result<String, String> {
    let mut scenario = scenario::builtin(name).map_err(|e| e.to_string())?;
    scenario.plan.options.seed = seed;
    Ok(scenario.to_json())
}

struct LevelOutcome {
    level: usize,
    requests: usize,
    accepted: usize,
    rejected: usize,
    cache_hits: usize,
    slowest_ms: u64,
}

/// Fires `total` submissions at concurrency `level`, waiting for every
/// response. Distinct seeds per request; `?wait` keeps a submission's
/// connection open until its job is terminal, which is what generates
/// real queue pressure with more clients than workers.
fn fire_level(
    addr: &str,
    scenario_name: &str,
    level: usize,
    total: usize,
    seed_base: u64,
) -> Result<LevelOutcome, String> {
    let addr: Arc<str> = Arc::from(addr);
    let scenario_name: Arc<str> = Arc::from(scenario_name);
    let mut outcome = LevelOutcome {
        level,
        requests: total,
        accepted: 0,
        rejected: 0,
        cache_hits: 0,
        slowest_ms: 0,
    };
    let mut sent = 0usize;
    let mut batch_seed = seed_base;
    while sent < total {
        let batch = level.min(total - sent);
        let mut handles = Vec::with_capacity(batch);
        for i in 0..batch {
            let addr = Arc::clone(&addr);
            let scenario_name = Arc::clone(&scenario_name);
            let seed = batch_seed + i as u64;
            handles.push(thread::spawn(move || -> Result<(u16, bool, u64), String> {
                let body = seeded_document(&scenario_name, seed)?;
                let started = Instant::now();
                let resp = http::request(
                    &addr,
                    "POST",
                    "/v1/jobs?wait=120",
                    body.as_bytes(),
                    CLIENT_TIMEOUT,
                )?;
                let elapsed_ms = started.elapsed().as_millis() as u64;
                if resp.status == 429 && resp.header("retry-after").is_none() {
                    return Err("429 without Retry-After".into());
                }
                let cache_hit = resp.header("x-lnuca-cache") == Some("hit");
                Ok((resp.status, cache_hit, elapsed_ms))
            }));
        }
        for handle in handles {
            let (status, cache_hit, elapsed_ms) = handle
                .join()
                .map_err(|_| "client thread panicked".to_owned())??;
            outcome.slowest_ms = outcome.slowest_ms.max(elapsed_ms);
            match status {
                200 | 202 => {
                    outcome.accepted += 1;
                    if cache_hit {
                        outcome.cache_hits += 1;
                    }
                }
                429 => outcome.rejected += 1,
                other => return Err(format!("unexpected status {other} under load")),
            }
        }
        sent += batch;
        batch_seed += batch as u64;
    }
    Ok(outcome)
}

fn run() -> Result<(Value, Option<String>), String> {
    let args = parse_args()?;
    let mut scraper = Scraper::new(&args.addr);
    scraper.scrape()?;

    // Phase 1: cold, then warm. Same document both times.
    eprintln!("phase 1: cold/warm cache on {:?}", args.scenario);
    let doc = seeded_document(&args.scenario, 0xC0FFEE)?;
    let cold_started = Instant::now();
    let cold = http::request(
        &args.addr,
        "POST",
        "/v1/jobs?wait=600",
        doc.as_bytes(),
        Duration::from_secs(600),
    )?;
    let cold_ms = cold_started.elapsed().as_millis() as u64;
    if cold.status != 200 {
        return Err(format!("cold submission answered {}: {}", cold.status, cold.text()));
    }
    if cold.header("x-lnuca-cache") != Some("miss") {
        return Err("cold submission was not a cache miss".into());
    }
    let warm_started = Instant::now();
    let warm = http::request(
        &args.addr,
        "POST",
        "/v1/jobs?wait=600",
        doc.as_bytes(),
        CLIENT_TIMEOUT,
    )?;
    let warm_ms = warm_started.elapsed().as_millis() as u64;
    if warm.status != 200 || warm.header("x-lnuca-cache") != Some("hit") {
        return Err(format!("warm submission was not a cache hit ({})", warm.status));
    }
    if warm.body != cold.body {
        return Err("invariant violated: cache hit is not byte-identical to the cold run".into());
    }
    scraper.scrape()?;
    if scraper.value("lnuca_serve_cache_hits_total") < 1.0 {
        return Err("cache hit not counted in /metrics".into());
    }

    // Phase 2: the concurrency ramp.
    let mut levels = Vec::new();
    let mut breaking_point: Option<usize> = None;
    let mut seed_base = 0x1000;
    for &level in &args.ramp {
        let total = if args.requests_per_level > 0 {
            args.requests_per_level
        } else {
            level * 2
        };
        eprintln!("phase 2: ramp level {level} ({total} requests)");
        let outcome = fire_level(&args.addr, &args.scenario, level, total, seed_base)?;
        seed_base += total as u64;
        scraper.scrape()?;
        if outcome.rejected > 0 && breaking_point.is_none() {
            breaking_point = Some(level);
        }
        eprintln!(
            "  accepted {} rejected {} cache-hits {} slowest {}ms",
            outcome.accepted, outcome.rejected, outcome.cache_hits, outcome.slowest_ms
        );
        levels.push(outcome);
    }
    let rejected_counted = scraper.value("lnuca_serve_rejected_total");
    let rejected_seen: usize = levels.iter().map(|l| l.rejected).sum();
    if (rejected_counted as usize) < rejected_seen {
        return Err(format!(
            "invariant violated: saw {rejected_seen} 429s but /metrics counts {rejected_counted}"
        ));
    }

    // Phase 3: sustained stress at the top level, then the optional drain.
    let top = *args.ramp.last().expect("ramp is non-empty");
    let sustained_total = if args.requests_per_level > 0 {
        args.requests_per_level * 2
    } else {
        top * 4
    };
    eprintln!("phase 3: sustained stress at level {top} ({sustained_total} requests)");
    let sustained = fire_level(&args.addr, &args.scenario, top, sustained_total, seed_base)?;
    scraper.scrape()?;
    let mut drain_seconds = -1.0f64;
    if let Some(pid) = args.drain_pid {
        eprintln!("phase 3: SIGTERM {pid} and waiting for the listener to close");
        let status = std::process::Command::new("kill")
            .args(["-TERM", &pid.to_string()])
            .status()
            .map_err(|e| format!("kill: {e}"))?;
        if !status.success() {
            return Err(format!("kill -TERM {pid} failed"));
        }
        let started = Instant::now();
        let deadline = started + Duration::from_secs(600);
        loop {
            match http::request(
                &args.addr,
                "GET",
                "/healthz",
                b"",
                Duration::from_secs(2),
            ) {
                Err(_) => {
                    drain_seconds = started.elapsed().as_secs_f64();
                    break;
                }
                Ok(_) if Instant::now() > deadline => {
                    return Err("invariant violated: daemon still listening 600s after SIGTERM".into())
                }
                Ok(_) => thread::sleep(Duration::from_millis(100)),
            }
        }
        eprintln!("  listener closed {drain_seconds:.1}s after SIGTERM");
    }

    // The report document.
    let out = args.out.clone();
    let level_values: Vec<Value> = levels
        .iter()
        .chain(std::iter::once(&sustained))
        .map(|l| {
            Value::Object(vec![
                ("concurrency".into(), Value::UInt(l.level as u64)),
                ("requests".into(), Value::UInt(l.requests as u64)),
                ("accepted".into(), Value::UInt(l.accepted as u64)),
                ("rejected_429".into(), Value::UInt(l.rejected as u64)),
                ("cache_hits".into(), Value::UInt(l.cache_hits as u64)),
                ("slowest_ms".into(), Value::UInt(l.slowest_ms)),
            ])
        })
        .collect();
    let report = Value::Object(vec![
        (
            "schema".into(),
            Value::String("lnuca-serve-hammer/v1".into()),
        ),
        ("scenario".into(), Value::String(args.scenario.clone())),
        ("queue_bound".into(), Value::UInt(scraper.queue_bound as u64)),
        (
            "max_observed_queue_depth".into(),
            Value::UInt(scraper.max_queue_depth as u64),
        ),
        (
            "admission_breaking_point_concurrency".into(),
            breaking_point.map_or(Value::Null, |l| Value::UInt(l as u64)),
        ),
        ("cold_run_ms".into(), Value::UInt(cold_ms)),
        ("warm_hit_ms".into(), Value::UInt(warm_ms)),
        (
            "drain_seconds".into(),
            if drain_seconds < 0.0 {
                Value::Null
            } else {
                Value::Float(drain_seconds)
            },
        ),
        ("levels".into(), Value::Array(level_values)),
        (
            "invariants".into(),
            Value::Array(
                [
                    "every request answered inside the client timeout (no deadlock)",
                    "queue_depth never exceeded queue_bound",
                    "every *_total counter monotone across scrapes",
                    "every 429 carried Retry-After and was counted in /metrics",
                    "warm cache hit byte-identical to the cold run",
                ]
                .iter()
                .map(|s| Value::String((*s).to_owned()))
                .collect(),
            ),
        ),
    ]);
    Ok((report, out))
}

fn main() -> ExitCode {
    match run() {
        Ok((report, out)) => {
            let text = report.to_pretty();
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("breaking points written to {path}");
                }
                None => print!("{text}"),
            }
            eprintln!("all invariants held");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lnuca-serve-hammer: {e}");
            ExitCode::FAILURE
        }
    }
}
