//! The `lnuca-serve` daemon binary.
//!
//! ```text
//! lnuca-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--cache-capacity N] [--journal DIR] [--baseline PATH]
//! ```
//!
//! Flags override the `LNUCA_SERVE_ADDR` / `LNUCA_SERVE_WORKERS` /
//! `LNUCA_QUEUE_DEPTH` environment knobs; scenario-level `LNUCA_*` knobs
//! (quick mode, budgets, threads) layer onto every submission exactly as
//! they do for the CLI. The daemon prints one `listening on ADDR` line to
//! stdout once the socket is bound (port 0 works — the line reports the
//! real port, which is how tests and CI discover it), serves until
//! SIGTERM/SIGINT, drains gracefully and exits 0.

use lnuca_serve::{router, signals, ServeConfig, Server};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = lnuca_bench::knobs::serve_addr();
    let mut config = ServeConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--addr" => match iter.next() {
                Some(v) => addr = v.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--workers" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.workers = v,
                _ => return usage_error("--workers needs a positive integer"),
            },
            "--queue-depth" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.queue_depth = v,
                _ => return usage_error("--queue-depth needs a positive integer"),
            },
            "--cache-capacity" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.cache_capacity = v,
                _ => return usage_error("--cache-capacity needs a positive integer"),
            },
            "--journal" => match iter.next() {
                Some(v) => config.journal_dir = Some(PathBuf::from(v)),
                None => return usage_error("--journal needs a directory"),
            },
            "--baseline" => match iter.next() {
                Some(v) => config.baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a file path"),
            },
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    signals::install_drain_handler();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(addr);
    let server = Server::start(config.clone());
    // Discovery line: tests and CI bind port 0 and parse the real port
    // from here. Keep the format stable.
    println!("lnuca-serve listening on {bound}");
    eprintln!(
        "workers {} · queue depth {} · cache capacity {} · journal {} · baseline {}",
        config.workers,
        config.queue_depth,
        config.cache_capacity,
        config
            .journal_dir
            .as_ref()
            .map_or("off".to_owned(), |p| p.display().to_string()),
        config
            .baseline_path
            .as_ref()
            .map_or("off".to_owned(), |p| p.display().to_string()),
    );
    match router::run_until_drained(&server, listener) {
        Ok(()) => {
            eprintln!("drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("lnuca-serve: {message}");
    print_help();
    ExitCode::FAILURE
}

fn print_help() {
    eprintln!(
        "usage: lnuca-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                  [--cache-capacity N] [--journal DIR] [--baseline PATH]\n\
         \n\
         Flags override LNUCA_SERVE_ADDR / LNUCA_SERVE_WORKERS / LNUCA_QUEUE_DEPTH.\n\
         Endpoints: POST /v1/jobs, POST /v1/scenarios/{{name}}, GET /v1/jobs/{{id}},\n\
         DELETE /v1/jobs/{{id}}, GET /metrics, GET /healthz. SIGTERM drains and exits 0."
    );
}
