//! HTTP endpoint dispatch and the drain-aware accept loop.
//!
//! Routes (all JSON unless noted):
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | `POST` | `/v1/jobs` | submit a scenario **document** (file semantics) |
//! | `POST` | `/v1/scenarios/{name}` | submit a **registry** scenario by name |
//! | `GET` | `/v1/jobs/{id}` | job snapshot (report inline once terminal) |
//! | `DELETE` | `/v1/jobs/{id}` | cancel a job |
//! | `GET` | `/metrics` | Prometheus text exposition |
//! | `GET` | `/healthz` | liveness (`ok` / `draining`) |
//!
//! Submissions accept `?priority=N` (higher first, default 0) and
//! `?wait=SECS` (block until the job is terminal and return the report in
//! the same response — the one-round-trip path CI uses). A cache hit
//! returns `200` with the stored report and an `x-lnuca-cache: hit`
//! header; an accepted job returns `202`; a full queue returns `429` with
//! `Retry-After`; a draining daemon returns `503`.
//!
//! The accept loop keeps the listener **nonblocking** and polls the
//! process drain flag between accepts: std's blocking `accept` retries
//! `EINTR`, so a SIGTERM delivered mid-accept would otherwise be absorbed.
//! On drain it stops accepting, runs the server drain
//! ([`Server::begin_drain`] + [`Server::drain_join`]) and returns.

use crate::http;
use crate::service::{JobSnapshot, Server, Submission};
use crate::signals;
use serde::json::Value;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Cap on a `?wait=SECS` long-poll.
const MAX_WAIT: Duration = Duration::from_secs(600);

/// Runs the accept loop until a drain is requested (SIGTERM/SIGINT or
/// [`Server::begin_drain`] from another thread), then drains the server
/// and returns. The caller exits 0 afterwards.
///
/// # Errors
///
/// Only setup can fail (marking the listener nonblocking); per-connection
/// errors are answered or dropped, never fatal.
pub fn run_until_drained(server: &Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if signals::drain_requested() || server.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                handlers.push(thread::spawn(move || handle_connection(&server, stream)));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("accept error (continuing): {e}");
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
    eprintln!("drain requested: refusing new work, finishing in-flight jobs");
    server.begin_drain();
    server.drain_join();
    for handle in handlers {
        let _ = handle.join();
    }
    Ok(())
}

/// Serves one connection: read one request, dispatch, write one response.
pub fn handle_connection(server: &Arc<Server>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match http::read_message(&mut stream, false) {
        Ok(r) => r,
        Err(e) => {
            respond_error(&mut stream, 400, &e);
            return;
        }
    };
    crate::Metrics::bump(&server.metrics().requests_total);
    let (path, query) = split_target(&request.target);
    match (request.method.as_str(), path) {
        ("GET", "/metrics") => {
            let body = server.metrics().render();
            let _ = http::write_response(
                &mut stream,
                200,
                http::reason(200),
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let status = if server.is_draining() { "draining" } else { "ok" };
            let body = object(vec![
                ("status", Value::String(status.to_owned())),
                (
                    "uptime_seconds",
                    Value::UInt(server.uptime().as_secs()),
                ),
            ]);
            respond_json(&mut stream, 200, &[], &body);
        }
        ("POST", "/v1/jobs") => {
            let submission = server.submit_document(&request.text(), priority_of(query));
            respond_submission(&mut stream, server, submission, wait_of(query));
        }
        ("POST", _) if path.starts_with("/v1/scenarios/") => {
            let name = &path["/v1/scenarios/".len()..];
            let submission = server.submit_name(name, priority_of(query));
            respond_submission(&mut stream, server, submission, wait_of(query));
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => {
            match parse_id(&path["/v1/jobs/".len()..]) {
                Some(id) => match server.snapshot(id) {
                    Some(snapshot) => {
                        let body = snapshot_json(&snapshot, true);
                        respond_json(&mut stream, 200, &[], &body);
                    }
                    None => respond_error(&mut stream, 404, "no such job"),
                },
                None => respond_error(&mut stream, 400, "job ids are decimal integers"),
            }
        }
        ("DELETE", _) if path.starts_with("/v1/jobs/") => {
            match parse_id(&path["/v1/jobs/".len()..]) {
                Some(id) => match server.cancel(id) {
                    Some(was) => {
                        let body = object(vec![
                            ("id", Value::UInt(id)),
                            ("was", Value::String(was.label().to_owned())),
                        ]);
                        respond_json(&mut stream, 200, &[], &body);
                    }
                    None => respond_error(&mut stream, 404, "no such job"),
                },
                None => respond_error(&mut stream, 400, "job ids are decimal integers"),
            }
        }
        ("GET" | "POST" | "DELETE", _) => respond_error(&mut stream, 404, "no such route"),
        _ => respond_error(&mut stream, 405, "method not allowed"),
    }
}

fn respond_submission(
    stream: &mut TcpStream,
    server: &Arc<Server>,
    submission: Submission,
    wait: Option<Duration>,
) {
    match submission {
        Submission::CacheHit { digest, report } => {
            let _ = http::write_response(
                stream,
                200,
                http::reason(200),
                "application/json",
                &[
                    ("x-lnuca-cache", "hit"),
                    ("x-lnuca-digest", &format!("{digest:016x}")),
                ],
                report.as_bytes(),
            );
        }
        Submission::Accepted { id, digest } => {
            if let Some(timeout) = wait {
                let snapshot = server.wait(id, timeout.min(MAX_WAIT));
                match snapshot {
                    Some(snapshot) if snapshot.state.is_terminal() => {
                        // One-round-trip path: the report body directly
                        // when the job produced one, the snapshot if not.
                        let digest_hex = format!("{digest:016x}");
                        let headers = [
                            ("x-lnuca-cache", "miss"),
                            ("x-lnuca-digest", digest_hex.as_str()),
                            ("x-lnuca-job-state", snapshot.state.label()),
                        ];
                        match &snapshot.report {
                            Some(report) => {
                                let _ = http::write_response(
                                    stream,
                                    200,
                                    http::reason(200),
                                    "application/json",
                                    &headers,
                                    report.as_bytes(),
                                );
                            }
                            None => {
                                let body = snapshot_json(&snapshot, true);
                                respond_json(stream, 500, &headers, &body);
                            }
                        }
                    }
                    Some(snapshot) => {
                        // Timed out still queued/running: point at the poll
                        // endpoint instead of failing the submission.
                        let body = snapshot_json(&snapshot, false);
                        respond_json(stream, 202, &[], &body);
                    }
                    None => respond_error(stream, 500, "job vanished"),
                }
            } else {
                let body = object(vec![
                    ("id", Value::UInt(id)),
                    ("digest", Value::String(format!("{digest:016x}"))),
                    ("state", Value::String("queued".to_owned())),
                    ("poll", Value::String(format!("/v1/jobs/{id}"))),
                ]);
                respond_json(stream, 202, &[], &body);
            }
        }
        Submission::Busy { retry_after_secs } => {
            let body = object(vec![(
                "error",
                Value::String("queue full — admission control refused the job".to_owned()),
            )]);
            // Belt-and-braces: whatever ETA the service computed, the wire
            // never carries `Retry-After: 0` — clients read that as "retry
            // immediately" and hammer a queue that is by definition full.
            let retry = retry_after_secs.max(1).to_string();
            respond_json(stream, 429, &[("retry-after", retry.as_str())], &body);
        }
        Submission::Draining => {
            let body = object(vec![(
                "error",
                Value::String("daemon is draining and admits no new work".to_owned()),
            )]);
            respond_json(stream, 503, &[], &body);
        }
        Submission::Invalid(message) => respond_error(stream, 400, &message),
    }
}

/// Renders a job snapshot. With `include_report`, a terminal job's report
/// document is embedded under `"report"` (parsed, not double-encoded).
fn snapshot_json(snapshot: &JobSnapshot, include_report: bool) -> Value {
    let mut fields = vec![
        ("id", Value::UInt(snapshot.id)),
        ("name", Value::String(snapshot.name.clone())),
        ("digest", Value::String(format!("{:016x}", snapshot.digest))),
        ("state", Value::String(snapshot.state.label().to_owned())),
    ];
    if let Some(error) = &snapshot.error {
        fields.push(("error", Value::String(error.clone())));
    }
    if include_report {
        if let Some(report) = &snapshot.report {
            if let Ok(value) = serde::json::parse(report) {
                fields.push(("report", value));
            }
        }
    }
    object(fields)
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn respond_json(stream: &mut TcpStream, status: u16, extra: &[(&str, &str)], body: &Value) {
    let text = body.to_pretty();
    let _ = http::write_response(
        stream,
        status,
        http::reason(status),
        "application/json",
        extra,
        text.as_bytes(),
    );
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let body = object(vec![("error", Value::String(message.to_owned()))]);
    respond_json(stream, status, &[], &body);
}

fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn priority_of(query: &str) -> i64 {
    query_param(query, "priority")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn wait_of(query: &str) -> Option<Duration> {
    query_param(query, "wait")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting_and_query_parsing() {
        let (path, query) = split_target("/v1/jobs?priority=3&wait=10");
        assert_eq!(path, "/v1/jobs");
        assert_eq!(priority_of(query), 3);
        assert_eq!(wait_of(query), Some(Duration::from_secs(10)));
        let (path, query) = split_target("/metrics");
        assert_eq!(path, "/metrics");
        assert_eq!(priority_of(query), 0);
        assert_eq!(wait_of(query), None);
    }
}
