//! The daemon core: job table, bounded priority queue, worker pool.
//!
//! [`Server`] generalises the per-study worker pool of
//! `lnuca_sim::experiments` into a daemon-lifetime scheduler. One
//! **submission** becomes one **job**: a validated scenario resolved to an
//! [`ExperimentPlan`] with the environment knobs layered exactly as the
//! CLI layers them, content-addressed by the semantic plan digest. Jobs
//! wait in a bounded max-priority queue (FIFO within a priority level);
//! admission control refuses work beyond the bound instead of queueing it.
//! Worker threads claim jobs and run each one as a full study behind a
//! `catch_unwind` quarantine — a poisoned scenario fails *its own job* and
//! the worker survives to take the next one. Completed failure-free
//! reports land in the [`ResultCache`] so a
//! semantically identical resubmission is served byte-identically without
//! simulating anything.
//!
//! Cancellation and the graceful drain both ride the cooperative
//! [`StopSignal`] from PR 7's supervision layer: a queued job dies in
//! place, a running job stops at run granularity — in-flight runs finish
//! (and are journaled when `--journal` is set), unstarted runs land in the
//! report's failure rows. See DESIGN.md §15 for the full state machine.

use crate::cache::ResultCache;
use crate::metrics::Metrics;
use lnuca_bench::cli::{self, ResolvedScenario};
use lnuca_bench::baseline::{self, StudyPerf};
use lnuca_sim::experiments::{ExperimentOptions, ExperimentPlan, RunPerf, Study};
use lnuca_sim::scenario::{self, Scenario};
use lnuca_sim::{journal, StopSignal};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon configuration, resolved from flags and `LNUCA_SERVE_*` knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool (each runs one job at a time).
    pub workers: usize,
    /// Admission bound: queued-but-not-running jobs beyond this are 429s.
    pub queue_depth: usize,
    /// Result-cache capacity, in reports.
    pub cache_capacity: usize,
    /// When set, every job journals completed runs to
    /// `<dir>/<digest:016x>.jsonl` and the drain stops running jobs at run
    /// granularity; a restarted daemon resumes them byte-identically. When
    /// unset, the drain lets running jobs finish.
    pub journal_dir: Option<PathBuf>,
    /// When set, completed jobs accumulate throughput records and the
    /// drain writes a `lnuca-bench-baseline/v3` document here (the
    /// daemon-hosted equivalent of `all_experiments`).
    pub baseline_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: lnuca_bench::knobs::serve_workers(),
            queue_depth: lnuca_bench::knobs::queue_depth(),
            cache_capacity: 64,
            journal_dir: None,
            baseline_path: None,
        }
    }
}

/// Lifecycle of one job. Exactly the states of DESIGN.md §15.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Claimed by a worker, simulating.
    Running,
    /// Finished with a report free of failure rows (cached).
    Done,
    /// Finished with a report that carries failure rows — e.g. a poisoned
    /// scenario whose panics were quarantined per run (not cached).
    Degraded,
    /// Died without a report (config/journal error, or a panic that
    /// escaped the study layer).
    Failed,
    /// Cancelled by its submitter (queued: dropped in place; running:
    /// stopped at run granularity, the partial report carries the rest as
    /// `cancelled` failure rows).
    Cancelled,
    /// Stopped by the graceful drain before (or while, when journaling)
    /// running.
    Shutdown,
}

impl JobState {
    /// Whether the state is terminal (no worker will touch the job again).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// Stable lowercase label used in JSON responses.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Shutdown => "shutdown",
        }
    }
}

/// What a submission got back.
#[derive(Debug)]
pub enum Submission {
    /// The semantic digest was cached: the stored report, byte-identical
    /// to the run that produced it. No job was created.
    CacheHit {
        /// The semantic plan digest that hit.
        digest: u64,
        /// The cached `lnuca-report/v1` document.
        report: Arc<str>,
    },
    /// Admitted: the job is queued (HTTP 202).
    Accepted {
        /// Job id, unique for the daemon's lifetime.
        id: u64,
        /// The semantic plan digest the result will be cached under.
        digest: u64,
    },
    /// Admission control refused: the queue is at its bound (HTTP 429).
    Busy {
        /// Suggested `Retry-After`, in seconds.
        retry_after_secs: u64,
    },
    /// The daemon is draining and admits nothing (HTTP 503).
    Draining,
    /// The document failed scenario validation or plan resolution
    /// (HTTP 400).
    Invalid(String),
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Scenario name.
    pub name: String,
    /// Semantic plan digest (the cache and journal key).
    pub digest: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The rendered report, present in `Done`/`Degraded` (and in
    /// `Cancelled`/`Shutdown` when the study still produced one).
    pub report: Option<Arc<str>>,
    /// Human-readable failure reason, present in `Failed`.
    pub error: Option<String>,
}

/// One queue slot. `BinaryHeap` is a max-heap: higher `priority` first,
/// and *lower* sequence number first within a priority level (FIFO).
#[derive(Debug, PartialEq, Eq)]
struct Slot {
    priority: i64,
    seq_desc: std::cmp::Reverse<u64>,
    id: u64,
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, &self.seq_desc, self.id).cmp(&(other.priority, &other.seq_desc, other.id))
    }
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything a worker needs to run a claimed job.
struct JobWork {
    id: u64,
    plan: Arc<ExperimentPlan>,
    digest: u64,
    stop: StopSignal,
}

struct JobRecord {
    name: String,
    digest: u64,
    plan: Arc<ExperimentPlan>,
    state: JobState,
    stop: StopSignal,
    report: Option<Arc<str>>,
    error: Option<String>,
}

/// One completed job's contribution to the `--baseline` document.
struct BaselineRecord {
    study: String,
    wall_seconds: f64,
    runs: Vec<RunPerf>,
    options: ExperimentOptions,
}

#[derive(Default)]
struct Inner {
    queue: BinaryHeap<Slot>,
    jobs: HashMap<u64, JobRecord>,
    draining: bool,
    next_id: u64,
    next_seq: u64,
}

/// Running total of completed-job wall time, the service-time estimate
/// behind the `Retry-After` queue-drain ETA.
#[derive(Default)]
struct JobWallStats {
    total_seconds: f64,
    jobs: u64,
}

/// The daemon core. Construct with [`Server::start`], share as an `Arc`.
pub struct Server {
    config: ServeConfig,
    metrics: Metrics,
    cache: Mutex<ResultCache>,
    inner: Mutex<Inner>,
    /// Signals workers that the queue or the drain flag changed.
    work: Condvar,
    /// Signals waiters that some job reached a terminal state.
    done: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
    baseline_records: Mutex<Vec<BaselineRecord>>,
    job_wall: Mutex<JobWallStats>,
    started: Instant,
}

impl Server {
    /// Boots the worker pool and returns the shared server handle.
    #[must_use]
    pub fn start(config: ServeConfig) -> Arc<Server> {
        if let Some(dir) = &config.journal_dir {
            // Best-effort: a failure surfaces later as a journal error on
            // the first job, with a clearer path in its message.
            let _ = std::fs::create_dir_all(dir);
        }
        let workers = config.workers.max(1);
        let server = Arc::new(Server {
            metrics: Metrics::new(workers, config.queue_depth),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            baseline_records: Mutex::new(Vec::new()),
            job_wall: Mutex::new(JobWallStats::default()),
            started: Instant::now(),
            config,
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let server = Arc::clone(&server);
            handles.push(
                thread::Builder::new()
                    .name(format!("lnuca-serve-worker-{index}"))
                    .spawn(move || server.worker_loop(index))
                    .expect("spawn worker thread"),
            );
        }
        *server.workers.lock().expect("workers lock") = handles;
        server
    }

    /// The daemon configuration this server was started with.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The metrics registry (rendered by `GET /metrics`).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Daemon uptime.
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Submits an `lnuca-scenario/v1` document (HTTP request body).
    ///
    /// Document submissions use **file semantics**: the committed
    /// configuration matrix is run exactly as spelled out, with only the
    /// options layer (`LNUCA_*`) applied — the same behaviour as
    /// `lnuca run <file>`.
    pub fn submit_document(&self, text: &str, priority: i64) -> Submission {
        let scenario = match Scenario::from_json(text) {
            Ok(s) => s,
            Err(e) => return Submission::Invalid(e.to_string()),
        };
        self.submit_resolved(
            ResolvedScenario {
                scenario,
                from_registry: false,
            },
            priority,
        )
    }

    /// Submits a scenario by registry name.
    ///
    /// Name submissions use **registry semantics**: the paper scenarios
    /// regenerate their configuration matrix from the layered options
    /// (`LNUCA_LEVELS`, `LNUCA_QUICK`, ...), the same behaviour as
    /// `lnuca run <name>`.
    pub fn submit_name(&self, name: &str, priority: i64) -> Submission {
        let scenario = match scenario::builtin(name) {
            Ok(s) => s,
            Err(e) => return Submission::Invalid(e.to_string()),
        };
        self.submit_resolved(
            ResolvedScenario {
                scenario,
                from_registry: true,
            },
            priority,
        )
    }

    fn submit_resolved(&self, resolved: ResolvedScenario, priority: i64) -> Submission {
        let plan = match cli::resolved_plan(&resolved) {
            Ok(p) => p,
            Err(e) => return Submission::Invalid(e),
        };
        let digest = match journal::plan_digest(&plan) {
            Ok(d) => d,
            Err(e) => return Submission::Invalid(e.to_string()),
        };
        // Cache first: a hit costs no queue slot and works mid-drain too —
        // serving stored bytes admits no new work.
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let hit = cache.get(digest);
            self.sync_cache_stats(&cache);
            if let Some(report) = hit {
                return Submission::CacheHit { digest, report };
            }
        }
        let mut inner = self.inner.lock().expect("inner lock");
        if inner.draining {
            Metrics::bump(&self.metrics.refused_draining_total);
            return Submission::Draining;
        }
        if inner.queue.len() >= self.config.queue_depth {
            Metrics::bump(&self.metrics.rejected_total);
            let queued = inner.queue.len();
            drop(inner);
            return Submission::Busy {
                retry_after_secs: self.retry_after_secs(queued),
            };
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.jobs.insert(
            id,
            JobRecord {
                name: plan.name.clone(),
                digest,
                plan: Arc::new(plan),
                state: JobState::Queued,
                stop: StopSignal::new(),
                report: None,
                error: None,
            },
        );
        inner.queue.push(Slot {
            priority,
            seq_desc: std::cmp::Reverse(seq),
            id,
        });
        self.metrics
            .queue_depth
            .store(inner.queue.len() as u64, Ordering::Relaxed);
        Metrics::bump(&self.metrics.jobs_submitted_total);
        drop(inner);
        self.work.notify_one();
        Submission::Accepted { id, digest }
    }

    /// A point-in-time snapshot of job `id`.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("inner lock");
        inner.jobs.get(&id).map(|job| JobSnapshot {
            id,
            name: job.name.clone(),
            digest: job.digest,
            state: job.state,
            report: job.report.clone(),
            error: job.error.clone(),
        })
    }

    /// Blocks until job `id` reaches a terminal state, or `timeout`
    /// elapses. Returns the final snapshot, or the current (non-terminal)
    /// one on timeout; `None` for an unknown id.
    #[must_use]
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobSnapshot> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("inner lock");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.is_terminal() => break,
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timed_out) = self
                .done
                .wait_timeout(inner, deadline - now)
                .expect("done wait");
            inner = guard;
        }
        inner.jobs.get(&id).map(|job| JobSnapshot {
            id,
            name: job.name.clone(),
            digest: job.digest,
            state: job.state,
            report: job.report.clone(),
            error: job.error.clone(),
        })
    }

    /// Cancels job `id`. A queued job dies in place (state `Cancelled`,
    /// removed from the queue lazily on claim); a running job gets its
    /// [`StopSignal`] raised and finishes at run granularity. Returns the
    /// state the job was in when the cancel landed, or `None` for an
    /// unknown id. Cancelling a terminal job is a no-op.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut inner = self.inner.lock().expect("inner lock");
        let job = inner.jobs.get_mut(&id)?;
        let was = job.state;
        match was {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled while queued".to_owned());
                Metrics::bump(&self.metrics.jobs_cancelled_total);
                drop(inner);
                self.done.notify_all();
            }
            JobState::Running => {
                // The worker folds the raise into the terminal state when
                // the study returns.
                job.stop.cancel();
            }
            _ => {}
        }
        Some(was)
    }

    /// Begins the graceful drain: stop admitting, fail every queued job
    /// with `Shutdown`, and — when journaling — stop running jobs at run
    /// granularity so a restarted daemon resumes them. Idempotent.
    pub fn begin_drain(&self) {
        let mut inner = self.inner.lock().expect("inner lock");
        if inner.draining {
            return;
        }
        inner.draining = true;
        self.metrics.draining.store(1, Ordering::Relaxed);
        let queued: Vec<u64> = inner.queue.drain().map(|slot| slot.id).collect();
        self.metrics.queue_depth.store(0, Ordering::Relaxed);
        for id in queued {
            if let Some(job) = inner.jobs.get_mut(&id) {
                if job.state == JobState::Queued {
                    job.state = JobState::Shutdown;
                    job.error = Some("daemon drained before the job ran".to_owned());
                    Metrics::bump(&self.metrics.jobs_shutdown_total);
                }
            }
        }
        if self.config.journal_dir.is_some() {
            for job in inner.jobs.values_mut() {
                if job.state == JobState::Running {
                    job.stop.shutdown();
                }
            }
        }
        drop(inner);
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Whether [`Server::begin_drain`] has run.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("inner lock").draining
    }

    /// Joins every worker after a drain and writes the `--baseline`
    /// document when configured. Call exactly once, after
    /// [`Server::begin_drain`].
    pub fn drain_join(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(path) = &self.config.baseline_path {
            let records = self.baseline_records.lock().expect("baseline lock");
            if records.is_empty() {
                eprintln!(
                    "no completed jobs — skipping the baseline document at {}",
                    path.display()
                );
            } else {
                let studies: Vec<StudyPerf<'_>> = records
                    .iter()
                    .map(|r| StudyPerf {
                        name: &r.study,
                        wall_seconds: r.wall_seconds,
                        runs: &r.runs,
                    })
                    .collect();
                let total: f64 = records.iter().map(|r| r.wall_seconds).sum();
                let json = baseline::baseline_json(&records[0].options, &studies, total);
                if let Err(e) = baseline::write(path, &json) {
                    eprintln!("cannot write baseline {}: {e}", path.display());
                }
            }
        }
    }

    /// Pushes the cache's lifetime counters into the metrics registry.
    /// `fetch_max` keeps each series monotone even when two submissions
    /// race to publish.
    fn sync_cache_stats(&self, cache: &ResultCache) {
        let (hits, misses, evictions) = cache.stats();
        self.metrics.cache_hits_total.fetch_max(hits, Ordering::Relaxed);
        self.metrics.cache_misses_total.fetch_max(misses, Ordering::Relaxed);
        self.metrics
            .cache_evictions_total
            .fetch_max(evictions, Ordering::Relaxed);
    }

    /// Claims the next runnable job, blocking until one exists or the
    /// drain empties the world. `None` means "worker should exit".
    fn claim(&self) -> Option<JobWork> {
        let mut inner = self.inner.lock().expect("inner lock");
        loop {
            while let Some(slot) = inner.queue.pop() {
                let depth = inner.queue.len() as u64;
                self.metrics.queue_depth.store(depth, Ordering::Relaxed);
                let Some(job) = inner.jobs.get_mut(&slot.id) else {
                    continue;
                };
                // A job cancelled while queued stays in the heap until
                // claimed; skip its corpse here.
                if job.state != JobState::Queued {
                    continue;
                }
                job.state = JobState::Running;
                return Some(JobWork {
                    id: slot.id,
                    plan: Arc::clone(&job.plan),
                    digest: job.digest,
                    stop: job.stop.clone(),
                });
            }
            if inner.draining {
                return None;
            }
            inner = self.work.wait(inner).expect("work wait");
        }
    }

    /// Suggested `Retry-After` for a refused submission: the queue-drain
    /// ETA — `queued / workers` jobs ahead of the caller, each taking the
    /// average wall time of the jobs completed so far — rounded **up** and
    /// clamped to at least 1. The old hardcoded `1` under-advised loaded
    /// daemons, and a naive `as u64` of a sub-second ETA rounds down to
    /// `Retry-After: 0`, which clients read as "retry immediately" and
    /// turn into a hot retry loop against a still-full queue.
    fn retry_after_secs(&self, queued: usize) -> u64 {
        let wall = self.job_wall.lock().expect("job wall lock");
        if wall.jobs == 0 {
            return 1; // no service-time sample yet: nonzero, but optimistic
        }
        let avg = wall.total_seconds / wall.jobs as f64;
        let eta = queued as f64 / self.config.workers.max(1) as f64 * avg;
        (eta.ceil() as u64).max(1)
    }

    fn worker_loop(self: Arc<Server>, index: usize) {
        while let Some(work) = self.claim() {
            self.metrics.inflight_jobs.fetch_add(1, Ordering::Relaxed);
            let outcome = self.run_job(index, &work);
            self.metrics.inflight_jobs.fetch_sub(1, Ordering::Relaxed);
            self.finish_job(work.id, outcome);
        }
    }

    /// Runs one job behind the panic quarantine. Returns the terminal
    /// state plus the report / error to record.
    fn run_job(
        &self,
        index: usize,
        work: &JobWork,
    ) -> (JobState, Option<Arc<str>>, Option<String>) {
        let journal_path = self
            .config
            .journal_dir
            .as_ref()
            .map(|dir| dir.join(format!("{:016x}.jsonl", work.digest)));
        let plan = Arc::clone(&work.plan);
        let stop = work.stop.clone();
        let started = Instant::now();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // resume = true: a journal left by a drained predecessor (same
            // digest → same plan semantics) is continued, not restarted.
            Study::run_controlled(&plan, journal_path.as_deref(), true, &stop)
        }));
        let wall_seconds = started.elapsed().as_secs_f64();
        {
            // Every job that ran — even a failed one — is a service-time
            // sample for the Retry-After queue-drain ETA.
            let mut wall = self.job_wall.lock().expect("job wall lock");
            wall.total_seconds += wall_seconds;
            wall.jobs += 1;
        }
        match result {
            Err(payload) => {
                // The per-run supervision inside the study already contains
                // simulation panics; reaching here means setup/reporting
                // code died. Quarantine: this job fails, the worker lives.
                let message = lnuca_sim::supervise::panic_message(&payload);
                Metrics::bump(&self.metrics.jobs_failed_total);
                (
                    JobState::Failed,
                    None,
                    Some(format!("job panicked outside run supervision: {message}")),
                )
            }
            Ok(Err(e)) => {
                Metrics::bump(&self.metrics.jobs_failed_total);
                (JobState::Failed, None, Some(e.to_string()))
            }
            Ok(Ok(study)) => {
                let cycles: u64 = study.perf.iter().map(|p| p.cycles).sum();
                self.metrics
                    .simulated_cycles_total
                    .fetch_add(cycles, Ordering::Relaxed);
                // CMP jobs additionally feed the coherence counters
                // (single-core results carry no coherence block).
                let mut transactions = 0u64;
                let mut invalidations = 0u64;
                let mut writebacks = 0u64;
                let mut recalls = 0u64;
                for c in study.results.iter().filter_map(|r| r.coherence.as_ref()) {
                    transactions += c.reads + c.writes;
                    invalidations += c.invalidations_sent;
                    writebacks += c.writebacks;
                    recalls += c.recalls;
                }
                for (counter, amount) in [
                    (&self.metrics.coherence_transactions_total, transactions),
                    (&self.metrics.coherence_invalidations_total, invalidations),
                    (&self.metrics.coherence_writebacks_total, writebacks),
                    (&self.metrics.coherence_recalls_total, recalls),
                ] {
                    counter.fetch_add(amount, Ordering::Relaxed);
                }
                if wall_seconds > 0.0 {
                    self.metrics
                        .record_worker_rate(index, cycles as f64 / 1_000.0 / wall_seconds);
                }
                let report: Arc<str> =
                    Arc::from(scenario::report_value(&plan, &study).to_pretty());
                let stopped = work.stop.error();
                if let Some(stop_error) = stopped {
                    let state = match stop_error {
                        lnuca_types::RunError::Shutdown => {
                            Metrics::bump(&self.metrics.jobs_shutdown_total);
                            JobState::Shutdown
                        }
                        _ => {
                            Metrics::bump(&self.metrics.jobs_cancelled_total);
                            JobState::Cancelled
                        }
                    };
                    return (state, Some(report), Some(stop_error.to_string()));
                }
                if study.failures.is_empty() {
                    let mut cache = self.cache.lock().expect("cache lock");
                    cache.insert(work.digest, Arc::clone(&report));
                    self.sync_cache_stats(&cache);
                    drop(cache);
                    self.record_baseline(&plan, &study, wall_seconds);
                    // A completed job's journal is spent: the cache now
                    // owns the result, and keeping the file would only
                    // make a future identical submission re-read it.
                    if let Some(path) = &journal_path {
                        let _ = std::fs::remove_file(path);
                    }
                    Metrics::bump(&self.metrics.jobs_completed_total);
                    (JobState::Done, Some(report), None)
                } else {
                    let summary = format!(
                        "{} of {} runs failed (first: {})",
                        study.failures.len(),
                        study.results.len() + study.failures.len(),
                        study.failures[0].error,
                    );
                    Metrics::bump(&self.metrics.jobs_degraded_total);
                    (JobState::Degraded, Some(report), Some(summary))
                }
            }
        }
    }

    fn finish_job(&self, id: u64, outcome: (JobState, Option<Arc<str>>, Option<String>)) {
        let (state, report, error) = outcome;
        let mut inner = self.inner.lock().expect("inner lock");
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.state = state;
            job.report = report;
            job.error = error;
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Accumulates a completed job's throughput for the `--baseline`
    /// document, under the study name `all_experiments` would use (the
    /// registry plans are `paper-conventional` / `paper-dnuca`, the
    /// committed baseline says `conventional` / `dnuca`).
    fn record_baseline(&self, plan: &ExperimentPlan, study: &Study, wall_seconds: f64) {
        if self.config.baseline_path.is_none() {
            return;
        }
        let name = plan
            .name
            .strip_prefix("paper-")
            .unwrap_or(&plan.name)
            .to_owned();
        self.baseline_records
            .lock()
            .expect("baseline lock")
            .push(BaselineRecord {
                study: name,
                wall_seconds,
                runs: study.perf.clone(),
                options: plan.options.clone(),
            });
    }
}
