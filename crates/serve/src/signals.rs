//! SIGTERM / SIGINT handling without a libc crate.
//!
//! The workspace builds offline, so there is no `signal-hook` or `libc`
//! dependency. This module hand-declares the two-symbol slice of the C
//! signal API the daemon needs — `signal(2)` with handler constants — and
//! installs an async-signal-safe handler that does exactly one thing: store
//! a relaxed atomic flag. The accept loop polls that flag (the listener is
//! nonblocking precisely so a signal cannot be swallowed by std's EINTR
//! retry loop) and begins the graceful drain.
//!
//! This is the only `unsafe` in the crate, and it is confined here: the
//! handler writes a single `AtomicBool`, which is on the async-signal-safe
//! list, and `signal()` itself is called once at startup before any worker
//! thread exists.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM or SIGINT arrives.
static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)`. The return value (the previous handler) is ignored —
    /// the daemon installs its handlers once and never restores.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_terminate(_signum: i32) {
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the drain handler for SIGTERM and SIGINT.
///
/// Call once at daemon startup, before spawning workers. Safe to call from
/// tests too — the handler only sets a flag the test can reset.
pub fn install_drain_handler() {
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
}

/// Whether a termination signal has arrived since startup (or the last
/// [`reset`]).
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::Relaxed)
}

/// Requests a drain programmatically — the in-process equivalent of
/// delivering SIGTERM, used by tests.
pub fn request_drain() {
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Clears the flag (tests only; the daemon never un-drains).
pub fn reset() {
    DRAIN_REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset();
        assert!(!drain_requested());
    }
}
