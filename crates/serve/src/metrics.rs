//! Prometheus-style text metrics (`GET /metrics`).
//!
//! Plain atomics rendered as the Prometheus text exposition format
//! (version 0.0.4): `*_total` series are counters and **monotone by
//! construction** — nothing ever decrements them — while queue depth,
//! in-flight jobs, the drain flag and per-worker throughput are gauges.
//! The hammer harness scrapes this endpoint between phases and asserts the
//! monotonicity and the queue bound.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// All counters and gauges of one daemon instance.
///
/// Counters use relaxed atomics: every series is independently monotone and
/// scrape-consistency across series is not a guarantee Prometheus-style
/// polling can have anyway.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests accepted (any route, any outcome).
    pub requests_total: AtomicU64,
    /// Jobs admitted into the queue (cache hits are *not* jobs).
    pub jobs_submitted_total: AtomicU64,
    /// Jobs that finished with a complete report (no failure rows).
    pub jobs_completed_total: AtomicU64,
    /// Jobs that finished with a report carrying failure rows (e.g. a
    /// poisoned scenario quarantined to its own job).
    pub jobs_degraded_total: AtomicU64,
    /// Jobs that died without a report (panic escaping the study layer,
    /// journal corruption).
    pub jobs_failed_total: AtomicU64,
    /// Jobs cancelled by their submitter.
    pub jobs_cancelled_total: AtomicU64,
    /// Jobs stopped by the graceful drain.
    pub jobs_shutdown_total: AtomicU64,
    /// Submissions rejected by admission control (HTTP 429).
    pub rejected_total: AtomicU64,
    /// Submissions refused because the daemon is draining (HTTP 503).
    pub refused_draining_total: AtomicU64,
    /// Result-cache hits served byte-identically without running.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses (submissions that had to run).
    pub cache_misses_total: AtomicU64,
    /// Result-cache LRU evictions.
    pub cache_evictions_total: AtomicU64,
    /// Simulated cycles retired by completed jobs.
    pub simulated_cycles_total: AtomicU64,
    /// MSI directory transactions (reads + writes) of CMP runs, summed
    /// over completed jobs. Single-core jobs contribute nothing.
    pub coherence_transactions_total: AtomicU64,
    /// MSI invalidations sent to private caches, summed over completed
    /// jobs.
    pub coherence_invalidations_total: AtomicU64,
    /// Dirty-line writebacks the MSI protocol drained, summed over
    /// completed jobs.
    pub coherence_writebacks_total: AtomicU64,
    /// Fixed-slot directory capacity recalls, summed over completed jobs.
    pub coherence_recalls_total: AtomicU64,
    /// Current queued (admitted, not yet running) jobs.
    pub queue_depth: AtomicU64,
    /// The configured admission bound (constant gauge, for dashboards).
    pub queue_bound: AtomicU64,
    /// Jobs currently running.
    pub inflight_jobs: AtomicU64,
    /// 1 while draining, else 0.
    pub draining: AtomicU64,
    /// Last observed throughput per worker, in kcycles/s (stored as `f64`
    /// bits; one slot per worker thread).
    pub worker_kcycles_per_sec: Vec<AtomicU64>,
}

impl Metrics {
    /// Metrics for a daemon with `workers` worker threads and the given
    /// admission bound.
    #[must_use]
    pub fn new(workers: usize, queue_bound: usize) -> Self {
        let mut metrics = Metrics::default();
        metrics.queue_bound.store(queue_bound as u64, Ordering::Relaxed);
        metrics.worker_kcycles_per_sec = (0..workers).map(|_| AtomicU64::new(0)).collect();
        metrics
    }

    /// Adds one to a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `kcycles_per_sec` for `worker` (ignored for out-of-range
    /// worker indices, which cannot happen with a correctly-sized pool).
    pub fn record_worker_rate(&self, worker: usize, kcycles_per_sec: f64) {
        if let Some(slot) = self.worker_kcycles_per_sec.get(worker) {
            slot.store(kcycles_per_sec.to_bits(), Ordering::Relaxed);
        }
    }

    /// Renders every series in the Prometheus text exposition format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counters: &[(&str, &AtomicU64, &str)] = &[
            ("lnuca_serve_requests_total", &self.requests_total, "HTTP requests accepted"),
            (
                "lnuca_serve_jobs_submitted_total",
                &self.jobs_submitted_total,
                "jobs admitted into the queue",
            ),
            (
                "lnuca_serve_jobs_completed_total",
                &self.jobs_completed_total,
                "jobs finished with a complete report",
            ),
            (
                "lnuca_serve_jobs_degraded_total",
                &self.jobs_degraded_total,
                "jobs finished with failure rows in the report",
            ),
            (
                "lnuca_serve_jobs_failed_total",
                &self.jobs_failed_total,
                "jobs that died without a report",
            ),
            (
                "lnuca_serve_jobs_cancelled_total",
                &self.jobs_cancelled_total,
                "jobs cancelled by their submitter",
            ),
            (
                "lnuca_serve_jobs_shutdown_total",
                &self.jobs_shutdown_total,
                "jobs stopped by the graceful drain",
            ),
            (
                "lnuca_serve_rejected_total",
                &self.rejected_total,
                "submissions rejected by admission control (429)",
            ),
            (
                "lnuca_serve_refused_draining_total",
                &self.refused_draining_total,
                "submissions refused while draining (503)",
            ),
            ("lnuca_serve_cache_hits_total", &self.cache_hits_total, "result-cache hits"),
            ("lnuca_serve_cache_misses_total", &self.cache_misses_total, "result-cache misses"),
            (
                "lnuca_serve_cache_evictions_total",
                &self.cache_evictions_total,
                "result-cache LRU evictions",
            ),
            (
                "lnuca_serve_simulated_cycles_total",
                &self.simulated_cycles_total,
                "simulated cycles retired by completed jobs",
            ),
            (
                "lnuca_serve_coherence_transactions_total",
                &self.coherence_transactions_total,
                "MSI directory transactions of CMP runs",
            ),
            (
                "lnuca_serve_coherence_invalidations_total",
                &self.coherence_invalidations_total,
                "MSI invalidations sent to private caches",
            ),
            (
                "lnuca_serve_coherence_writebacks_total",
                &self.coherence_writebacks_total,
                "dirty-line writebacks drained by the MSI protocol",
            ),
            (
                "lnuca_serve_coherence_recalls_total",
                &self.coherence_recalls_total,
                "fixed-slot directory capacity recalls",
            ),
        ];
        for (name, value, help) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        }
        let gauges: &[(&str, &AtomicU64, &str)] = &[
            ("lnuca_serve_queue_depth", &self.queue_depth, "jobs queued, waiting for a worker"),
            ("lnuca_serve_queue_bound", &self.queue_bound, "configured admission bound"),
            ("lnuca_serve_inflight_jobs", &self.inflight_jobs, "jobs currently running"),
            ("lnuca_serve_draining", &self.draining, "1 while the daemon drains"),
        ];
        for (name, value, help) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        }
        let _ = writeln!(
            out,
            "# HELP lnuca_serve_worker_kcycles_per_sec last observed throughput per worker"
        );
        let _ = writeln!(out, "# TYPE lnuca_serve_worker_kcycles_per_sec gauge");
        for (i, slot) in self.worker_kcycles_per_sec.iter().enumerate() {
            let rate = f64::from_bits(slot.load(Ordering::Relaxed));
            let _ = writeln!(out, "lnuca_serve_worker_kcycles_per_sec{{worker=\"{i}\"}} {rate:.3}");
        }
        // Derived convenience gauge: hit ratio over all cache lookups so far.
        let hits = self.cache_hits_total.load(Ordering::Relaxed);
        let misses = self.cache_misses_total.load(Ordering::Relaxed);
        let ratio = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "# HELP lnuca_serve_cache_hit_ratio hits / (hits + misses)");
        let _ = writeln!(out, "# TYPE lnuca_serve_cache_hit_ratio gauge");
        let _ = writeln!(out, "lnuca_serve_cache_hit_ratio {ratio:.6}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_exposes_every_series_and_tracks_counters() {
        let metrics = Metrics::new(2, 8);
        Metrics::bump(&metrics.requests_total);
        Metrics::bump(&metrics.requests_total);
        metrics.record_worker_rate(1, 1234.5);
        let text = metrics.render();
        assert!(text.contains("lnuca_serve_requests_total 2"));
        assert!(text.contains("lnuca_serve_queue_bound 8"));
        assert!(text.contains("lnuca_serve_worker_kcycles_per_sec{worker=\"0\"} 0.000"));
        assert!(text.contains("lnuca_serve_worker_kcycles_per_sec{worker=\"1\"} 1234.500"));
        assert!(text.contains("# TYPE lnuca_serve_requests_total counter"));
        assert!(text.contains("# TYPE lnuca_serve_coherence_transactions_total counter"));
        assert!(text.contains("lnuca_serve_coherence_invalidations_total 0"));
        assert!(text.contains("lnuca_serve_coherence_writebacks_total 0"));
        assert!(text.contains("lnuca_serve_coherence_recalls_total 0"));
        assert!(text.contains("# TYPE lnuca_serve_queue_depth gauge"));
        assert!(text.contains("lnuca_serve_cache_hit_ratio 0.000000"));
    }
}
