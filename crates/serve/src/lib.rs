//! The supervised simulation daemon (DESIGN.md §15).
//!
//! `lnuca-serve` turns the experiment engine into a long-running service:
//! a hand-rolled HTTP/1.1 endpoint (std `TcpListener` only — the workspace
//! builds offline, DESIGN.md §8) accepts `lnuca-scenario/v1` documents,
//! validates them with the strict scenario parser, and schedules each
//! submission as one **job** on a persistent, seed-isolated worker pool.
//! The pool generalises the per-study worker queue of
//! `lnuca_sim::experiments` into a daemon-lifetime priority queue with:
//!
//! * **admission control** — a bounded queue depth; a full queue answers
//!   `429 Too Many Requests` with `Retry-After` instead of growing,
//! * **per-job cancellation** — a queued job is dropped in place, a
//!   running job is stopped cleanly at run granularity through the
//!   cooperative [`lnuca_sim::StopSignal`],
//! * **per-job deadlines** — the PR 7 watchdog budgets
//!   (`LNUCA_CYCLE_BUDGET` / `LNUCA_RUN_TIMEOUT_MS` /
//!   `LNUCA_LIVELOCK_WINDOW`) layer onto every submission exactly as they
//!   do for the CLI,
//! * **panic quarantine** — a poisoned scenario fails its own job as a
//!   structured report row (or a `failed` job state); the worker thread
//!   survives and takes the next job,
//! * a **content-addressed result cache** keyed by the semantic plan
//!   digest (`lnuca_sim::journal::plan_digest`): resubmitting a scenario
//!   whose semantic fields are unchanged is served the stored report
//!   **byte-identically** without simulating anything, with deterministic
//!   LRU eviction under a configured capacity,
//! * **Prometheus-style `/metrics`** — monotone counters plus queue-depth
//!   / in-flight / per-worker-throughput gauges,
//! * **graceful drain** — SIGTERM stops admission, journals or finishes
//!   in-flight work (`--journal DIR` writes one content-addressed study
//!   journal per job), and exits 0 with state a restarted daemon resumes
//!   byte-identically.
//!
//! The breaking-point load harness lives in the `lnuca-serve-hammer`
//! binary (see `validation/`): concurrency ramps, cold/warm cache phases
//! and sustained stress against a live daemon, asserting the invariants
//! (bounded queue, no deadlock, monotone metrics, clean drain) and
//! recording the measured breaking points as JSON.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod router;
pub mod service;
pub mod signals;

pub use cache::ResultCache;
pub use metrics::Metrics;
pub use service::{JobSnapshot, JobState, ServeConfig, Server, Submission};
