//! Property tests for [`TraceGenerator`] across every access-pattern class:
//! determinism, footprint containment, and convergence of the instruction
//! mix to the profile knobs.

use lnuca_workloads::generator::{COLD_BASE, HOT_BASE, STREAM_BASE, TRACE_BLOCK_BYTES, WARM_BASE};
use lnuca_workloads::{AccessPattern, Instr, TraceGenerator, WorkloadProfile};
use proptest::prelude::*;
use std::collections::HashSet;

/// A compact profile (fast to exhaust) with the given pattern and bounded
/// region sizes, stride shortcut disabled so every address is
/// pattern-generated. Returned as a builder so each test can chain its own
/// overrides before building.
fn bounded(pattern: AccessPattern) -> lnuca_workloads::profile::WorkloadProfileBuilder {
    WorkloadProfile::builder(format!("prop.{}", pattern.label()))
        .regions(24, 96, 384)
        .stream_blocks(640)
        .spatial_stride_prob(0.0)
        .pattern(pattern)
        .phase_period(500)
        .stream_stride_blocks(3)
}

fn bounded_profile(pattern: AccessPattern) -> WorkloadProfile {
    bounded(pattern).build().expect("bounded profile is valid")
}

fn every_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Regions),
        Just(AccessPattern::PointerChase),
        Just(AccessPattern::Streaming),
        Just(AccessPattern::Gups),
        Just(AccessPattern::PhaseMix),
    ]
}

fn sample(profile: WorkloadProfile, n: usize, seed: u64) -> Vec<Instr> {
    TraceGenerator::new(profile, seed).take(n).collect()
}

proptest! {
    #[test]
    fn same_seed_same_trace_for_every_pattern(
        pattern in every_pattern(),
        seed in any::<u64>(),
        take in 200usize..1500,
    ) {
        let p = bounded_profile(pattern);
        prop_assert_eq!(sample(p.clone(), take, seed), sample(p.clone(), take, seed));
        // And a different seed diverges (the RNG drives every pattern).
        prop_assert_ne!(
            sample(p.clone(), 1500, seed),
            sample(p, 1500, seed.wrapping_add(1))
        );
    }

    #[test]
    fn footprint_stays_within_the_profile_regions(
        pattern in every_pattern(),
        seed in 0u64..1_000,
    ) {
        let p = bounded_profile(pattern);
        let trace = sample(p.clone(), 4_000, seed);
        let blocks: HashSet<u64> = trace
            .iter()
            .filter_map(|i| i.addr)
            .map(|a| a.block_index(TRACE_BLOCK_BYTES))
            .collect();
        // Every touched block lies inside one of the four configured
        // regions — no pattern can escape the declared footprint.
        let spans = [
            (HOT_BASE, p.hot_blocks),
            (WARM_BASE, p.warm_blocks),
            (COLD_BASE, p.cold_blocks),
            (STREAM_BASE, p.stream_blocks),
        ];
        for b in &blocks {
            let addr = b * TRACE_BLOCK_BYTES;
            let contained = spans.iter().any(|&(base, len)| {
                (base..base + len * TRACE_BLOCK_BYTES).contains(&addr)
            });
            prop_assert!(contained, "stray address {addr:#x} under {}", p.pattern.label());
        }
        // Therefore the byte footprint is bounded by the declared total.
        prop_assert!(blocks.len() as u64 * TRACE_BLOCK_BYTES <= p.footprint_bytes());
    }

    #[test]
    fn instruction_mix_converges_to_the_knobs(
        pattern in every_pattern(),
        loads in 0.15f64..0.35,
        stores in 0.05f64..0.15,
        branches in 0.05f64..0.20,
        seed in 0u64..1_000,
    ) {
        let p = bounded(pattern)
            .mix(loads, stores, branches, 0.05)
            .build()
            .expect("mix ranges are valid");
        let n = 30_000;
        let trace = sample(p, n, seed);
        let frac = |pred: fn(&Instr) -> bool| {
            trace.iter().filter(|i| pred(i)).count() as f64 / n as f64
        };
        let observed_loads = frac(|i| i.kind.is_load());
        let observed_stores = frac(|i| i.kind.is_store());
        let observed_branches = frac(|i| i.kind.is_branch());
        prop_assert!((observed_loads - loads).abs() < 0.02, "loads {observed_loads} vs {loads}");
        prop_assert!((observed_stores - stores).abs() < 0.02, "stores {observed_stores} vs {stores}");
        prop_assert!(
            (observed_branches - branches).abs() < 0.02,
            "branches {observed_branches} vs {branches}"
        );
    }
}

#[test]
fn pointer_chase_visits_every_cold_block_exactly_once_per_lap() {
    // The chase is a full-period permutation over the cold region: within
    // the first `cold_blocks` chase steps, no block repeats; after exactly
    // `cold_blocks` steps the walk has covered the whole region.
    let p = bounded(AccessPattern::PointerChase)
        .region_probs(0.0, 0.33, 0.09) // hot_prob 0 => pure chase
        .mix(1.0, 0.0, 0.0, 0.0)
        .build()
        .expect("pure-chase profile is valid");
    let lap = p.cold_blocks as usize;
    let trace = sample(p, lap, 11);
    let blocks: Vec<u64> = trace
        .iter()
        .filter_map(|i| i.addr)
        .map(|a| a.block_index(TRACE_BLOCK_BYTES))
        .collect();
    assert_eq!(blocks.len(), lap);
    let distinct: HashSet<u64> = blocks.iter().copied().collect();
    assert_eq!(distinct.len(), lap, "one lap covers every cold block exactly once");
}

#[test]
fn streaming_strides_by_the_configured_stride() {
    let p = bounded(AccessPattern::Streaming)
        .region_probs(0.0, 0.33, 0.09)
        .mix(1.0, 0.0, 0.0, 0.0)
        .stream_stride_blocks(5)
        .build()
        .expect("pure-stream profile is valid");
    let stream_blocks = p.stream_blocks;
    let trace = sample(p, 100, 3);
    let blocks: Vec<u64> = trace
        .iter()
        .filter_map(|i| i.addr)
        .map(|a| a.block_index(TRACE_BLOCK_BYTES) - STREAM_BASE / TRACE_BLOCK_BYTES)
        .collect();
    for pair in blocks.windows(2) {
        assert_eq!(
            (pair[0] + 5) % stream_blocks,
            pair[1],
            "walker advances by exactly the stride"
        );
    }
}

#[test]
fn phase_mix_reaches_regions_the_stationary_phases_alone_would_not() {
    // One rotation (4 × phase_period instructions) must touch both the
    // streaming region (Streaming phase) and the cold region (PointerChase
    // phase) even with hot-heavy region knobs.
    let p = bounded(AccessPattern::PhaseMix)
        .region_probs(0.9, 0.05, 0.05)
        .build()
        .expect("hot-heavy phase-mix profile is valid");
    let trace = sample(p.clone(), 4 * p.phase_period as usize, 5);
    let touched = |base: u64| {
        trace
            .iter()
            .filter_map(|i| i.addr)
            .any(|a| (base..base + 0x1000_0000).contains(&a.0))
    };
    assert!(touched(STREAM_BASE), "streaming phase ran");
    assert!(touched(COLD_BASE), "pointer-chase phase ran");
}
