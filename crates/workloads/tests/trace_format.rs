//! Property tests for the `lnuca-trace/v1` format: delta-encoding
//! round-trip identity over arbitrary record streams, rejection of
//! truncated and corrupted images, and determinism of
//! [`AccessPattern::Trace`] replays through [`TraceGenerator`].

use lnuca_workloads::trace::{self, ADDR_LIMIT, CHUNK_RECORDS};
use lnuca_workloads::{Instr, InstrKind, TraceData, TraceGenerator, TraceRecord};
use proptest::prelude::*;

/// Arbitrary records: a mix of fully random references and strided runs, so
/// generated streams exercise both single ops and run compression.
fn records_strategy() -> impl Strategy<Value = Vec<TraceRecord>> {
    let single = (0..ADDR_LIMIT, any::<bool>(), 0..ADDR_LIMIT)
        .prop_map(|(addr, write, pc)| vec![TraceRecord { addr, write, pc }]);
    let run = (
        (0..ADDR_LIMIT / 2, any::<bool>()),
        (0..ADDR_LIMIT, 1u64..512, 3usize..40),
    )
        .prop_map(|((base, write), (pc, stride, len))| {
            (0..len)
                .map(|i| TraceRecord { addr: base + i as u64 * stride, write, pc })
                .collect::<Vec<_>>()
        });
    prop::collection::vec(prop_oneof![single, run], 1..60)
        .prop_map(|groups| groups.into_iter().flatten().collect())
}

proptest! {
    #[test]
    fn round_trip_is_identity(records in records_strategy()) {
        let bytes = trace::encode(&records).expect("in-range records encode");
        let data = TraceData::from_bytes(bytes).expect("encoded traces load");
        prop_assert_eq!(data.record_count(), records.len() as u64);
        prop_assert_eq!(data.decode_all().expect("loaded traces decode"), records);
    }

    #[test]
    fn truncation_is_always_rejected(records in records_strategy(), frac in 0.0f64..1.0) {
        let bytes = trace::encode(&records).expect("in-range records encode");
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            TraceData::from_bytes(bytes[..cut].to_vec()).is_err(),
            "truncating {} bytes to {cut} must be rejected",
            bytes.len()
        );
    }

    #[test]
    fn single_byte_corruption_is_rejected(records in records_strategy(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bytes = trace::encode(&records).expect("in-range records encode");
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = bytes;
        bad[pos] ^= flip;
        // Either the load rejects the image (magic/version/count/checksum
        // violations) or — never — it silently decodes different records.
        if let Ok(data) = TraceData::from_bytes(bad) {
            prop_assert_eq!(data.decode_all().expect("loaded traces decode"), records);
        }
    }
}

/// Replays a trace profile and extracts the memory references it issues.
fn replayed_memory(path: &str, seed: u64, n: usize) -> Vec<(u64, bool)> {
    let profile = trace::trace_profile(path);
    TraceGenerator::new(profile, seed)
        .take(n)
        .filter_map(|i: Instr| {
            i.addr
                .map(|a| (a.0, matches!(i.kind, InstrKind::Store)))
        })
        .collect()
}

#[test]
fn trace_replay_is_deterministic_and_in_order() {
    let records: Vec<TraceRecord> = (0..CHUNK_RECORDS as u64 + 50)
        .map(|i| TraceRecord {
            addr: 0x4000 + (i * i) % 0x10_0000,
            write: i % 3 == 0,
            pc: 0x400000 + i % 7,
        })
        .collect();
    let path = std::env::temp_dir().join("lnuca-trace-format-replay.lnt");
    let path = path.to_str().expect("temp path is utf-8").to_owned();
    trace::write_file(&path, &records).expect("trace writes");

    // Same seed ⇒ bit-identical instruction stream.
    let a = replayed_memory(&path, 7, 40_000);
    let b = replayed_memory(&path, 7, 40_000);
    assert_eq!(a, b, "replay is deterministic for a fixed seed");
    assert!(a.len() > records.len(), "40k instructions wrap the trace at least once");

    // The memory references are exactly the trace records, in file order,
    // wrapping at the end — regardless of seed (the seed only moves the
    // *positions* of memory instructions within the stream).
    for seed in [7, 8] {
        let replayed = replayed_memory(&path, seed, 40_000);
        for (i, &(addr, write)) in replayed.iter().enumerate() {
            let expected = records[i % records.len()];
            assert_eq!((addr, write), (expected.addr, expected.write), "record {i} under seed {seed}");
        }
    }
}
