//! Workload profiles: the knobs of one synthetic benchmark.

use lnuca_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Which SPEC-like suite a profile belongs to. The paper reports Integer and
/// Floating-Point results separately (harmonic means per suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Integer-code behaviour class (pointer chasing, branchy control flow,
    /// small-to-medium working sets).
    Integer,
    /// Floating-point behaviour class (streaming loops, large working sets,
    /// predictable branches, higher FP-op density).
    FloatingPoint,
}

impl Suite {
    /// Short label used in reports ("Int." / "FP.").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Suite::Integer => "Int.",
            Suite::FloatingPoint => "FP.",
        }
    }
}

/// The memory access-pattern class of a profile.
///
/// [`AccessPattern::Regions`] is the original three-region reuse model every
/// paper-suite profile uses; the other classes are the adversarial patterns
/// of the `suites::adversarial` expansion (pointer chasing, streaming,
/// GUPS-like random updates and phase switching), designed to stress the
/// cache hierarchies in ways the stationary region model cannot. Every
/// pattern-generated address lands inside the four standard regions, so
/// with `spatial_stride_prob = 0` the footprint is bounded exactly by
/// [`WorkloadProfile::footprint_bytes`]; the spatial-stride shortcut can
/// additionally walk a run of word-sized steps past a region's edge, like
/// it always could under the region model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccessPattern {
    /// The three-region reuse model plus streaming walker (paper default).
    #[default]
    Regions,
    /// A deterministic pointer chase: each access follows a pseudo-random
    /// permutation cycle over the cold region (one giant linked list), with
    /// probability `hot_prob` of touching the hot region instead. Defeats
    /// spatial locality entirely; reuse distance equals the chain length.
    PointerChase,
    /// A strided streaming kernel: each access advances the streaming walker
    /// by `stream_stride_blocks` blocks (wrapping over the streaming
    /// region), with probability `hot_prob` of touching the hot region.
    Streaming,
    /// GUPS-like uniform-random accesses over the *entire* footprint (all
    /// four regions glued into one giant table). Maximises tag pressure:
    /// almost every access is a conflict candidate.
    Gups,
    /// Phase switching: rotates through `Regions`, `Streaming`,
    /// `PointerChase` and `Gups` every `phase_period` instructions,
    /// stressing residency turnover and the event-horizon engine.
    PhaseMix,
    /// Replay of an ingested `lnuca-trace/v1` binary trace (see
    /// [`crate::trace`]): memory addresses and read/write kinds come from
    /// the file named by [`WorkloadProfile::trace_path`] (wrapping at the
    /// end), while the non-memory instruction mix, branches and dependency
    /// distances still follow the profile's knobs.
    Trace,
    /// Producer-consumer sharing (CMP): cores hand blocks of the shared
    /// region around a ring — each core writes a window of blocks "owned"
    /// by its stage and reads the window its upstream neighbour just
    /// wrote, so lines migrate M→S→M between neighbours. Single-core runs
    /// degenerate to a rotating private window over the shared region.
    ProducerConsumer,
    /// Migratory sharing (CMP): a read-modify-write working set whose
    /// "home" core rotates every [`WorkloadProfile::phase_period`]
    /// instructions; whole lines migrate from core to core with an
    /// ownership transfer (and writeback) per hop. Single-core runs see a
    /// stationary read-modify-write working set.
    Migratory,
    /// False sharing (CMP): every core hammers its *own* word, but the
    /// words of all cores are interleaved within the same small set of
    /// lines, so the directory invalidates furiously while no data is
    /// truly shared. Single-core runs see a tiny hot working set.
    FalseSharing,
}

impl AccessPattern {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::Regions => "regions",
            AccessPattern::PointerChase => "pointer-chase",
            AccessPattern::Streaming => "streaming",
            AccessPattern::Gups => "gups",
            AccessPattern::PhaseMix => "phase-mix",
            AccessPattern::Trace => "trace",
            AccessPattern::ProducerConsumer => "producer-consumer",
            AccessPattern::Migratory => "migratory",
            AccessPattern::FalseSharing => "false-sharing",
        }
    }
}

/// The parameters of one synthetic benchmark.
///
/// Memory behaviour is controlled by the profile's [`AccessPattern`]; under
/// the default [`AccessPattern::Regions`] class it is a three-region reuse
/// model plus a streaming walker:
///
/// * a **hot** region that mostly fits in the L1 / root tile,
/// * a **warm** region sized like the L2/L-NUCA capacity range — this is the
///   region whose service latency the paper's proposal improves,
/// * a **cold** region sized like the L3,
/// * a **streaming** footprint larger than the L3 that always misses on chip.
///
/// Each memory access picks a region with the configured probability and a
/// block within it; with probability `spatial_stride_prob` it instead
/// continues sequentially from the previous access (spatial locality).
///
/// The struct is `#[non_exhaustive]`: construct one with
/// [`WorkloadProfile::builder`] (or start from [`WorkloadProfile::default`]
/// and mutate fields) so that future knobs can be added without breaking
/// downstream struct literals — three consecutive PRs grew this type by
/// literal breakage before the builder existed.
///
/// # Example
///
/// ```
/// use lnuca_workloads::{AccessPattern, Suite, WorkloadProfile};
///
/// let profile = WorkloadProfile::builder("my.stream")
///     .suite(Suite::FloatingPoint)
///     .pattern(AccessPattern::Streaming)
///     .stream_stride_blocks(3)
///     .build()?;
/// assert_eq!(profile.name, "my.stream");
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name used in reports.
    pub name: String,
    /// Which suite the benchmark belongs to.
    pub suite: Suite,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_fraction: f64,
    /// Fraction of the remaining (ALU) instructions that are floating point.
    pub fp_fraction: f64,
    /// Number of 32-byte blocks in the hot region.
    pub hot_blocks: u64,
    /// Number of 32-byte blocks in the warm region.
    pub warm_blocks: u64,
    /// Number of 32-byte blocks in the cold region.
    pub cold_blocks: u64,
    /// Number of 32-byte blocks in the streaming footprint.
    pub stream_blocks: u64,
    /// Number of 32-byte blocks in the **shared** region used by the CMP
    /// sharing patterns ([`AccessPattern::ProducerConsumer`],
    /// [`AccessPattern::Migratory`], [`AccessPattern::FalseSharing`]);
    /// ignored by the single-core patterns. Every core of a CMP run sees
    /// the same shared region, partitioned per pattern semantics.
    pub shared_blocks: u64,
    /// Probability that a memory access targets the hot region.
    pub hot_prob: f64,
    /// Probability that a memory access targets the warm region.
    pub warm_prob: f64,
    /// Probability that a memory access targets the cold region.
    pub cold_prob: f64,
    /// Probability that a memory access continues sequentially from the
    /// previous one instead of sampling a region.
    pub spatial_stride_prob: f64,
    /// Mean register-dependency distance (larger = more ILP).
    pub mean_dep_distance: f64,
    /// Probability that a branch follows its per-branch bias (higher =
    /// easier to predict).
    pub branch_bias: f64,
    /// Number of static branches in the synthetic program.
    pub static_branches: u64,
    /// Memory access-pattern class.
    pub pattern: AccessPattern,
    /// Instructions per phase for [`AccessPattern::PhaseMix`] (ignored by
    /// the other patterns).
    pub phase_period: u64,
    /// Walker stride in blocks for [`AccessPattern::Streaming`] (ignored by
    /// the other patterns).
    pub stream_stride_blocks: u64,
    /// Path of the `lnuca-trace/v1` file replayed by
    /// [`AccessPattern::Trace`]; must be `Some` exactly when the pattern is
    /// `Trace`. The file is opened when a generator is constructed, not at
    /// validation time.
    pub trace_path: Option<String>,
}

impl WorkloadProfile {
    /// Starts building a profile named `name`, with every other knob at the
    /// balanced defaults of [`WorkloadProfile::default`].
    #[must_use]
    pub fn builder(name: impl Into<String>) -> WorkloadProfileBuilder {
        let mut profile = WorkloadProfile::default();
        profile.name = name.into();
        WorkloadProfileBuilder { profile }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if fractions/probabilities are outside
    /// `[0, 1]`, their sums exceed 1, or any region is empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let frac_sum = self.load_fraction + self.store_fraction + self.branch_fraction;
        for (name, v) in [
            ("load_fraction", self.load_fraction),
            ("store_fraction", self.store_fraction),
            ("branch_fraction", self.branch_fraction),
            ("fp_fraction", self.fp_fraction),
            ("hot_prob", self.hot_prob),
            ("warm_prob", self.warm_prob),
            ("cold_prob", self.cold_prob),
            ("spatial_stride_prob", self.spatial_stride_prob),
            ("branch_bias", self.branch_bias),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::new(name, format!("must be in [0, 1], got {v}")));
            }
        }
        if frac_sum > 1.0 + 1e-9 {
            return Err(ConfigError::new(
                "load/store/branch fractions",
                format!("must sum to at most 1, got {frac_sum}"),
            ));
        }
        if self.hot_prob + self.warm_prob + self.cold_prob > 1.0 + 1e-9 {
            return Err(ConfigError::new(
                "hot/warm/cold probabilities",
                "must sum to at most 1 (the remainder goes to the streaming walker)",
            ));
        }
        for (name, v) in [
            ("hot_blocks", self.hot_blocks),
            ("warm_blocks", self.warm_blocks),
            ("cold_blocks", self.cold_blocks),
            ("stream_blocks", self.stream_blocks),
            ("shared_blocks", self.shared_blocks),
            ("static_branches", self.static_branches),
        ] {
            if v == 0 {
                return Err(ConfigError::new(name, "must be nonzero"));
            }
        }
        if self.mean_dep_distance < 1.0 {
            return Err(ConfigError::new(
                "mean_dep_distance",
                format!("must be at least 1, got {}", self.mean_dep_distance),
            ));
        }
        if self.phase_period == 0 {
            return Err(ConfigError::new("phase_period", "must be nonzero"));
        }
        if self.stream_stride_blocks == 0 {
            return Err(ConfigError::new("stream_stride_blocks", "must be nonzero"));
        }
        match (&self.pattern, &self.trace_path) {
            (AccessPattern::Trace, None) => {
                return Err(ConfigError::new(
                    "trace_path",
                    "pattern `trace` requires a trace_path",
                ));
            }
            (AccessPattern::Trace, Some(path)) if path.is_empty() => {
                return Err(ConfigError::new("trace_path", "must not be empty"));
            }
            (pattern, Some(_)) if *pattern != AccessPattern::Trace => {
                return Err(ConfigError::new(
                    "trace_path",
                    format!("only pattern `trace` replays a file, this profile is `{}`", pattern.label()),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Fraction of instructions that access memory.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        self.load_fraction + self.store_fraction
    }

    /// Total data footprint of the benchmark in bytes (32-byte blocks).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        (self.hot_blocks + self.warm_blocks + self.cold_blocks + self.stream_blocks) * 32
    }
}

impl Default for WorkloadProfile {
    /// A balanced integer-like default profile.
    fn default() -> Self {
        WorkloadProfile {
            name: "default".to_owned(),
            suite: Suite::Integer,
            load_fraction: 0.25,
            store_fraction: 0.10,
            branch_fraction: 0.18,
            fp_fraction: 0.05,
            hot_blocks: 512,
            warm_blocks: 4_096,
            cold_blocks: 131_072,
            stream_blocks: 4_000_000,
            shared_blocks: 2_048,
            hot_prob: 0.55,
            warm_prob: 0.33,
            cold_prob: 0.09,
            spatial_stride_prob: 0.35,
            mean_dep_distance: 6.0,
            branch_bias: 0.92,
            static_branches: 2_048,
            pattern: AccessPattern::Regions,
            phase_period: 4_096,
            stream_stride_blocks: 1,
            trace_path: None,
        }
    }
}

/// Builder for [`WorkloadProfile`] (see [`WorkloadProfile::builder`]).
///
/// Every setter overrides one knob; grouped setters exist for the knobs
/// that are always tuned together ([`mix`](Self::mix),
/// [`regions`](Self::regions), [`region_probs`](Self::region_probs)).
/// [`build`](Self::build) validates the result.
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Sets the suite the benchmark belongs to.
    #[must_use]
    pub fn suite(mut self, suite: Suite) -> Self {
        self.profile.suite = suite;
        self
    }

    /// Sets the load/store/branch/FP instruction mix in one call.
    #[must_use]
    pub fn mix(mut self, loads: f64, stores: f64, branches: f64, fp: f64) -> Self {
        self.profile.load_fraction = loads;
        self.profile.store_fraction = stores;
        self.profile.branch_fraction = branches;
        self.profile.fp_fraction = fp;
        self
    }

    /// Sets the hot/warm/cold region sizes (in 32-byte blocks) in one call.
    #[must_use]
    pub fn regions(mut self, hot: u64, warm: u64, cold: u64) -> Self {
        self.profile.hot_blocks = hot;
        self.profile.warm_blocks = warm;
        self.profile.cold_blocks = cold;
        self
    }

    /// Sets the hot/warm/cold region probabilities in one call (the
    /// remainder goes to the streaming walker).
    #[must_use]
    pub fn region_probs(mut self, hot: f64, warm: f64, cold: f64) -> Self {
        self.profile.hot_prob = hot;
        self.profile.warm_prob = warm;
        self.profile.cold_prob = cold;
        self
    }

    /// Sets the streaming footprint size in 32-byte blocks.
    #[must_use]
    pub fn stream_blocks(mut self, blocks: u64) -> Self {
        self.profile.stream_blocks = blocks;
        self
    }

    /// Sets the shared-region size (in 32-byte blocks) used by the CMP
    /// sharing patterns.
    #[must_use]
    pub fn shared_blocks(mut self, blocks: u64) -> Self {
        self.profile.shared_blocks = blocks;
        self
    }

    /// Sets the probability of continuing sequentially from the previous
    /// access.
    #[must_use]
    pub fn spatial_stride_prob(mut self, prob: f64) -> Self {
        self.profile.spatial_stride_prob = prob;
        self
    }

    /// Sets the mean register-dependency distance.
    #[must_use]
    pub fn mean_dep_distance(mut self, distance: f64) -> Self {
        self.profile.mean_dep_distance = distance;
        self
    }

    /// Sets the probability that a branch follows its per-branch bias.
    #[must_use]
    pub fn branch_bias(mut self, bias: f64) -> Self {
        self.profile.branch_bias = bias;
        self
    }

    /// Sets the number of static branches in the synthetic program.
    #[must_use]
    pub fn static_branches(mut self, branches: u64) -> Self {
        self.profile.static_branches = branches;
        self
    }

    /// Sets the memory access-pattern class.
    #[must_use]
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.profile.pattern = pattern;
        self
    }

    /// Sets the instructions per phase for [`AccessPattern::PhaseMix`].
    #[must_use]
    pub fn phase_period(mut self, period: u64) -> Self {
        self.profile.phase_period = period;
        self
    }

    /// Sets the walker stride in blocks for [`AccessPattern::Streaming`].
    #[must_use]
    pub fn stream_stride_blocks(mut self, stride: u64) -> Self {
        self.profile.stream_stride_blocks = stride;
        self
    }

    /// Sets the trace file replayed by [`AccessPattern::Trace`] (pair with
    /// `.pattern(AccessPattern::Trace)`; `build` enforces the coupling).
    #[must_use]
    pub fn trace_path(mut self, path: impl Into<String>) -> Self {
        self.profile.trace_path = Some(path.into());
        self
    }

    /// Validates and produces the profile.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] [`WorkloadProfile::validate`]
    /// reports.
    pub fn build(self) -> Result<WorkloadProfile, ConfigError> {
        self.profile.validate()?;
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        assert!(WorkloadProfile::default().validate().is_ok());
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Integer.label(), "Int.");
        assert_eq!(Suite::FloatingPoint.label(), "FP.");
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let base = WorkloadProfile::default();
        assert!(WorkloadProfile { load_fraction: 1.5, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { load_fraction: 0.6, store_fraction: 0.6, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { hot_prob: 0.7, warm_prob: 0.6, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { hot_blocks: 0, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { mean_dep_distance: 0.5, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { phase_period: 0, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { stream_stride_blocks: 0, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile { branch_bias: -0.1, ..base.clone() }.validate().is_err());
        // pattern/trace_path coupling, both directions.
        assert!(WorkloadProfile { pattern: AccessPattern::Trace, ..base.clone() }.validate().is_err());
        assert!(WorkloadProfile {
            pattern: AccessPattern::Trace,
            trace_path: Some(String::new()),
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadProfile { trace_path: Some("x.lnt".to_owned()), ..base }.validate().is_err());
    }

    #[test]
    fn pattern_labels_are_distinct() {
        let labels = [
            AccessPattern::Regions.label(),
            AccessPattern::PointerChase.label(),
            AccessPattern::Streaming.label(),
            AccessPattern::Gups.label(),
            AccessPattern::PhaseMix.label(),
            AccessPattern::Trace.label(),
            AccessPattern::ProducerConsumer.label(),
            AccessPattern::Migratory.label(),
            AccessPattern::FalseSharing.label(),
        ];
        let unique: std::collections::HashSet<&str> = labels.into_iter().collect();
        assert_eq!(unique.len(), 9);
        assert_eq!(AccessPattern::default(), AccessPattern::Regions);
    }

    #[test]
    fn builder_sets_every_knob_and_validates() {
        let p = WorkloadProfile::builder("b.test")
            .suite(Suite::FloatingPoint)
            .mix(0.3, 0.1, 0.1, 0.5)
            .regions(100, 200, 300)
            .region_probs(0.5, 0.3, 0.1)
            .stream_blocks(4_096)
            .spatial_stride_prob(0.2)
            .mean_dep_distance(7.0)
            .branch_bias(0.95)
            .static_branches(512)
            .pattern(AccessPattern::PhaseMix)
            .phase_period(1_000)
            .stream_stride_blocks(2)
            .build()
            .unwrap();
        assert_eq!(p.name, "b.test");
        assert_eq!(p.suite, Suite::FloatingPoint);
        assert_eq!((p.hot_blocks, p.warm_blocks, p.cold_blocks), (100, 200, 300));
        assert_eq!(p.pattern, AccessPattern::PhaseMix);
        assert_eq!(p.phase_period, 1_000);

        let err = WorkloadProfile::builder("b.bad").mix(0.7, 0.7, 0.0, 0.0).build();
        assert!(err.is_err(), "the builder validates on build");
    }

    #[test]
    fn derived_quantities() {
        let p = WorkloadProfile::default();
        assert!((p.memory_fraction() - 0.35).abs() < 1e-12);
        assert_eq!(
            p.footprint_bytes(),
            (512 + 4_096 + 131_072 + 4_000_000) * 32
        );
    }
}
