//! Deterministic synthetic trace generation.

use crate::instr::{Instr, InstrKind};
use crate::profile::{AccessPattern, WorkloadProfile};
use crate::trace::{TraceData, TraceReplay};
use lnuca_types::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Block size (bytes) used by the address generators. Matches the L1 /
/// L-NUCA block size so one "block" of the reuse model is one L1 block.
pub const TRACE_BLOCK_BYTES: u64 = 32;

/// Base virtual address of the hot region. The four regions are spaced far
/// apart so they never alias in any of the caches under study; the bases
/// are public so property tests can assert containment.
pub const HOT_BASE: u64 = 0x0000_1000_0000;
/// Base virtual address of the warm region.
pub const WARM_BASE: u64 = 0x0000_2000_0000;
/// Base virtual address of the cold region.
pub const COLD_BASE: u64 = 0x0000_4000_0000;
/// Base virtual address of the streaming region.
pub const STREAM_BASE: u64 = 0x0001_0000_0000;
/// Base virtual address of the **shared** region the CMP sharing patterns
/// ([`AccessPattern::ProducerConsumer`], [`AccessPattern::Migratory`],
/// [`AccessPattern::FalseSharing`]) operate on: every core of a CMP run
/// addresses the same [`WorkloadProfile::shared_blocks`]-block window
/// here, so cross-core conflicts are real sharing, never aliasing. Placed
/// well above the streaming region's maximum extent.
pub const SHARED_BASE: u64 = 0x0002_0000_0000;

/// A seeded, infinite iterator of synthetic instructions following a
/// [`WorkloadProfile`].
///
/// The generator is deterministic: the same profile and seed always produce
/// the same trace, which keeps every experiment in the repository
/// reproducible.
///
/// # Example
///
/// ```
/// use lnuca_workloads::{TraceGenerator, WorkloadProfile};
///
/// let profile = WorkloadProfile::default();
/// let a: Vec<_> = TraceGenerator::new(profile.clone(), 7).take(100).collect();
/// let b: Vec<_> = TraceGenerator::new(profile, 7).take(100).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    /// Byte address of the previous memory access (for spatial strides).
    last_addr: u64,
    /// Current position of the streaming walker.
    stream_cursor: u64,
    /// Current node of the pointer chase (a block index in the cold
    /// region); advanced by a full-period permutation step.
    chase_cursor: u64,
    /// Per-static-branch bias direction (true = usually taken).
    branch_directions: Vec<bool>,
    /// Streaming reader over the ingested binary trace, present exactly for
    /// [`AccessPattern::Trace`] profiles.
    replay: Option<TraceReplay>,
    /// This stream's core index within a CMP run (`0` for solo runs).
    core_id: u64,
    /// Total cores of the CMP run this stream belongs to (`1` for solo).
    cores: u64,
    /// Producer cursor of the sharing patterns (walks the core's own
    /// window of the shared region).
    shared_write_cursor: u64,
    /// Consumer cursor of the sharing patterns (walks the upstream
    /// neighbour's window).
    shared_read_cursor: u64,
    generated: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation, or — for an
    /// [`AccessPattern::Trace`] profile — if the file at its `trace_path`
    /// cannot be loaded as `lnuca-trace/v1`; construct profiles through
    /// [`WorkloadProfile::validate`]-checked paths (the built-in suites are
    /// always valid).
    #[must_use]
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self::for_core(profile, seed, 0, 1)
    }

    /// Creates the instruction stream of core `core_id` of a `cores`-wide
    /// CMP run. `for_core(profile, seed, 0, 1)` is bit-identical to
    /// [`TraceGenerator::new`]`(profile, seed)` — solo runs are the
    /// one-core special case, not a separate code path. Each core draws
    /// from its own decorrelated RNG stream; the sharing patterns
    /// additionally use `core_id`/`cores` to partition the shared region.
    ///
    /// # Panics
    ///
    /// Panics like [`TraceGenerator::new`], and if `core_id >= cores` or
    /// `cores == 0`.
    #[must_use]
    pub fn for_core(profile: WorkloadProfile, seed: u64, core_id: usize, cores: usize) -> Self {
        assert!(cores > 0, "a CMP run has at least one core");
        assert!(core_id < cores, "core {core_id} out of range for {cores} cores");
        profile
            .validate()
            .expect("trace generator requires a valid workload profile");
        // Core 0's perturbation is zero, which is what makes the solo
        // stream the one-core special case bit for bit.
        let perturb = (core_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_u64 ^ perturb);
        let branch_directions = (0..profile.static_branches)
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let replay = match profile.pattern {
            AccessPattern::Trace => {
                let path = profile
                    .trace_path
                    .as_deref()
                    .expect("validation couples pattern `trace` to a trace_path");
                let data = TraceData::load(path)
                    .unwrap_or_else(|e| panic!("cannot replay trace {path:?}: {e}"));
                Some(TraceReplay::new(data))
            }
            _ => None,
        };
        TraceGenerator {
            last_addr: HOT_BASE,
            stream_cursor: 0,
            chase_cursor: 0,
            branch_directions,
            replay,
            core_id: core_id as u64,
            cores: cores as u64,
            shared_write_cursor: 0,
            shared_read_cursor: 0,
            profile,
            rng,
            generated: 0,
        }
    }

    /// This stream's `(core index, total cores)` within its CMP run
    /// (`(0, 1)` for solo streams).
    #[must_use]
    pub fn core(&self) -> (usize, usize) {
        (self.core_id as usize, self.cores as usize)
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of instructions generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The pattern steering the *current* access: the profile's own class,
    /// except under [`AccessPattern::PhaseMix`] where the classes rotate
    /// every `phase_period` instructions.
    fn active_pattern(&self) -> AccessPattern {
        match self.profile.pattern {
            AccessPattern::PhaseMix => {
                const ROTATION: [AccessPattern; 4] = [
                    AccessPattern::Regions,
                    AccessPattern::Streaming,
                    AccessPattern::PointerChase,
                    AccessPattern::Gups,
                ];
                let phase = self.generated / self.profile.phase_period;
                ROTATION[(phase % 4) as usize]
            }
            pattern => pattern,
        }
    }

    /// One full-period permutation step over `[0, n)`: an LCG modulo the
    /// next power of two (multiplier ≡ 1 mod 4, odd increment ⇒ full
    /// period), cycle-walked down to `n`. Every block of the chase region is
    /// visited exactly once per lap, in an order with no spatial structure —
    /// a deterministic giant linked list.
    fn chase_step(cursor: u64, n: u64) -> u64 {
        let mask = n.next_power_of_two() - 1;
        let mut x = cursor;
        loop {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407)
                & mask;
            if x < n {
                return x;
            }
        }
    }

    fn next_memory_addr(&mut self, is_store: bool) -> Addr {
        let p = &self.profile;
        // Spatial locality: continue the previous access one word (8 bytes)
        // further, so several consecutive accesses land in the same cache
        // block before the walk crosses into the next one — the behaviour of
        // array traversals and line-filling loops.
        if self.rng.gen_bool(p.spatial_stride_prob) {
            self.last_addr += 8;
            return Addr(self.last_addr);
        }
        let addr = match self.active_pattern() {
            AccessPattern::Regions => self.next_regions_block() * TRACE_BLOCK_BYTES,
            AccessPattern::PointerChase => self.next_chase_block() * TRACE_BLOCK_BYTES,
            AccessPattern::Streaming => self.next_streaming_block() * TRACE_BLOCK_BYTES,
            AccessPattern::Gups => self.next_gups_block() * TRACE_BLOCK_BYTES,
            AccessPattern::ProducerConsumer => {
                self.next_producer_consumer_block(is_store) * TRACE_BLOCK_BYTES
            }
            AccessPattern::Migratory => self.next_migratory_block() * TRACE_BLOCK_BYTES,
            AccessPattern::FalseSharing => self.next_false_sharing_addr(),
            AccessPattern::PhaseMix => unreachable!("active_pattern resolves the rotation"),
            AccessPattern::Trace => {
                unreachable!("trace profiles take the replay path, never the synthetic one")
            }
        };
        self.last_addr = addr;
        Addr(self.last_addr)
    }

    /// The original three-region reuse model plus streaming walker.
    fn next_regions_block(&mut self) -> u64 {
        let p = &self.profile;
        let region = self.rng.gen::<f64>();
        if region < p.hot_prob {
            HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks)
        } else if region < p.hot_prob + p.warm_prob {
            WARM_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.warm_blocks)
        } else if region < p.hot_prob + p.warm_prob + p.cold_prob {
            COLD_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.cold_blocks)
        } else {
            // Streaming walker: strictly sequential over a huge footprint.
            self.stream_cursor = (self.stream_cursor + 1) % p.stream_blocks;
            STREAM_BASE / TRACE_BLOCK_BYTES + self.stream_cursor
        }
    }

    /// Pointer chase over the cold region (probability `hot_prob` of a hot
    /// touch, modelling the chasing loop's own stack/locals).
    fn next_chase_block(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.hot_prob) {
            return HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks);
        }
        self.chase_cursor = Self::chase_step(self.chase_cursor, p.cold_blocks);
        COLD_BASE / TRACE_BLOCK_BYTES + self.chase_cursor
    }

    /// Strided streaming over the streaming region (probability `hot_prob`
    /// of a hot touch).
    fn next_streaming_block(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.hot_prob) {
            return HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks);
        }
        self.stream_cursor = (self.stream_cursor + p.stream_stride_blocks) % p.stream_blocks;
        STREAM_BASE / TRACE_BLOCK_BYTES + self.stream_cursor
    }

    /// GUPS-like uniform-random access over the whole footprint: the four
    /// regions glued into one table, sampled uniformly.
    fn next_gups_block(&mut self) -> u64 {
        let p = &self.profile;
        let total = p.hot_blocks + p.warm_blocks + p.cold_blocks + p.stream_blocks;
        let slot = self.rng.gen_range(0..total);
        if slot < p.hot_blocks {
            HOT_BASE / TRACE_BLOCK_BYTES + slot
        } else if slot < p.hot_blocks + p.warm_blocks {
            WARM_BASE / TRACE_BLOCK_BYTES + (slot - p.hot_blocks)
        } else if slot < p.hot_blocks + p.warm_blocks + p.cold_blocks {
            COLD_BASE / TRACE_BLOCK_BYTES + (slot - p.hot_blocks - p.warm_blocks)
        } else {
            STREAM_BASE / TRACE_BLOCK_BYTES + (slot - p.hot_blocks - p.warm_blocks - p.cold_blocks)
        }
    }

    /// Producer-consumer ring over the shared region: the region is cut
    /// into one window per core; stores walk the core's own window, loads
    /// walk the upstream neighbour's, so every handed-off line goes
    /// through an M→S downgrade at the consumer and back to M at the
    /// producer. With one core both windows coincide (a rotating private
    /// buffer). Probability `hot_prob` of a private hot touch models the
    /// stage's own locals.
    fn next_producer_consumer_block(&mut self, is_store: bool) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.hot_prob) {
            return HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks);
        }
        let window = (p.shared_blocks / self.cores).max(1);
        if is_store {
            let stage = self.core_id;
            self.shared_write_cursor = (self.shared_write_cursor + 1) % window;
            SHARED_BASE / TRACE_BLOCK_BYTES + stage * window + self.shared_write_cursor
        } else {
            let stage = (self.core_id + self.cores - 1) % self.cores;
            self.shared_read_cursor = (self.shared_read_cursor + 1) % window;
            SHARED_BASE / TRACE_BLOCK_BYTES + stage * window + self.shared_read_cursor
        }
    }

    /// Migratory sharing: the shared region is cut into one partition per
    /// core, and each core's active partition rotates every
    /// `phase_period` instructions — so a partition's accessor changes
    /// over time and its lines migrate core to core, one ownership
    /// transfer (and writeback) per hop. With one core the partition is
    /// stationary: a plain read-modify-write working set.
    fn next_migratory_block(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.hot_prob) {
            return HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks);
        }
        let partition = (p.shared_blocks / self.cores).max(1);
        let stage = (self.generated / p.phase_period + self.core_id) % self.cores;
        SHARED_BASE / TRACE_BLOCK_BYTES + stage * partition + self.rng.gen_range(0..partition)
    }

    /// False sharing: every core hammers the word at its own index inside
    /// blocks drawn from the same small pool, so cores never touch the
    /// same word yet constantly invalidate each other's copies of the
    /// same lines. Returns a byte address (the word offset matters).
    fn next_false_sharing_addr(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.hot_prob) {
            let block = HOT_BASE / TRACE_BLOCK_BYTES + self.rng.gen_range(0..p.hot_blocks);
            return block * TRACE_BLOCK_BYTES;
        }
        let line = self.rng.gen_range(0..p.shared_blocks);
        let word = self.core_id % (TRACE_BLOCK_BYTES / 8);
        (SHARED_BASE / TRACE_BLOCK_BYTES + line) * TRACE_BLOCK_BYTES + word * 8
    }

    fn next_dep_distance(&mut self) -> u32 {
        // Geometric-like distribution with the configured mean: short
        // dependency chains are common, long ones rare.
        let mean = self.profile.mean_dep_distance;
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let d = (-u.ln() * mean).ceil();
        d.clamp(1.0, 64.0) as u32
    }

    fn next_branch(&mut self) -> InstrKind {
        let pc = self.rng.gen_range(0..self.profile.static_branches);
        let bias = self.branch_directions[pc as usize];
        let follows_bias = self.rng.gen_bool(self.profile.branch_bias);
        InstrKind::Branch {
            pc,
            taken: if follows_bias { bias } else { !bias },
        }
    }

    /// One instruction of an [`AccessPattern::Trace`] replay: the class draw
    /// and the ALU/branch filler follow the profile's knobs like the
    /// synthetic patterns, but every memory slot consumes the next trace
    /// record, which dictates both the address and the load/store kind (so
    /// `load_fraction + store_fraction` sets the memory density while the
    /// trace sets everything else).
    fn next_replay_instr(&mut self) -> Instr {
        let memory_cut = self.profile.load_fraction + self.profile.store_fraction;
        let branch_cut = memory_cut + self.profile.branch_fraction;
        let fp_fraction = self.profile.fp_fraction;
        let class = self.rng.gen::<f64>();
        if class < memory_cut {
            let record = self
                .replay
                .as_mut()
                .expect("replay instructions only occur with a loaded trace")
                .next_record();
            Instr {
                kind: if record.write { InstrKind::Store } else { InstrKind::Load },
                addr: Some(Addr(record.addr)),
                dep_distance: self.next_dep_distance(),
            }
        } else if class < branch_cut {
            Instr {
                kind: self.next_branch(),
                addr: None,
                dep_distance: self.next_dep_distance(),
            }
        } else {
            let kind = if self.rng.gen_bool(fp_fraction) {
                InstrKind::FpAlu
            } else {
                InstrKind::IntAlu
            };
            Instr {
                kind,
                addr: None,
                dep_distance: self.next_dep_distance(),
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        if self.replay.is_some() {
            let instr = self.next_replay_instr();
            self.generated += 1;
            return Some(instr);
        }
        let p = &self.profile;
        let class = self.rng.gen::<f64>();
        let load_cut = p.load_fraction;
        let store_cut = load_cut + p.store_fraction;
        let branch_cut = store_cut + p.branch_fraction;
        let fp_fraction = p.fp_fraction;

        let instr = if class < load_cut {
            Instr {
                kind: InstrKind::Load,
                addr: Some(self.next_memory_addr(false)),
                dep_distance: self.next_dep_distance(),
            }
        } else if class < store_cut {
            Instr {
                kind: InstrKind::Store,
                addr: Some(self.next_memory_addr(true)),
                dep_distance: self.next_dep_distance(),
            }
        } else if class < branch_cut {
            Instr {
                kind: self.next_branch(),
                addr: None,
                dep_distance: self.next_dep_distance(),
            }
        } else {
            let kind = if self.rng.gen_bool(fp_fraction) {
                InstrKind::FpAlu
            } else {
                InstrKind::IntAlu
            };
            Instr {
                kind,
                addr: None,
                dep_distance: self.next_dep_distance(),
            }
        };
        self.generated += 1;
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Suite;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn sample(profile: WorkloadProfile, n: usize, seed: u64) -> Vec<Instr> {
        TraceGenerator::new(profile, seed).take(n).collect()
    }

    #[test]
    fn traces_are_reproducible_and_seed_sensitive() {
        let p = WorkloadProfile::default();
        assert_eq!(sample(p.clone(), 500, 1), sample(p.clone(), 500, 1));
        assert_ne!(sample(p.clone(), 500, 1), sample(p, 500, 2));
    }

    #[test]
    fn instruction_mix_approximates_the_profile() {
        let p = WorkloadProfile::default();
        let n = 200_000;
        let trace = sample(p.clone(), n, 3);
        let loads = trace.iter().filter(|i| i.kind.is_load()).count() as f64 / n as f64;
        let stores = trace.iter().filter(|i| i.kind.is_store()).count() as f64 / n as f64;
        let branches = trace.iter().filter(|i| i.kind.is_branch()).count() as f64 / n as f64;
        assert!((loads - p.load_fraction).abs() < 0.01, "load fraction {loads}");
        assert!((stores - p.store_fraction).abs() < 0.01, "store fraction {stores}");
        assert!((branches - p.branch_fraction).abs() < 0.01, "branch fraction {branches}");
    }

    #[test]
    fn memory_instructions_carry_addresses_and_others_do_not() {
        let trace = sample(WorkloadProfile::default(), 5_000, 11);
        for i in &trace {
            assert_eq!(i.addr.is_some(), i.kind.is_memory());
        }
    }

    #[test]
    fn footprint_respects_region_sizes() {
        let p = WorkloadProfile {
            hot_blocks: 16,
            warm_blocks: 64,
            cold_blocks: 128,
            stream_blocks: 256,
            spatial_stride_prob: 0.0,
            ..WorkloadProfile::default()
        };
        let trace = sample(p, 50_000, 5);
        let blocks: HashSet<u64> = trace
            .iter()
            .filter_map(|i| i.addr)
            .map(|a| a.block_index(TRACE_BLOCK_BYTES))
            .collect();
        // Every touched block belongs to one of the four regions.
        for b in blocks {
            let addr = b * TRACE_BLOCK_BYTES;
            let in_hot = (HOT_BASE..HOT_BASE + 16 * TRACE_BLOCK_BYTES).contains(&addr);
            let in_warm = (WARM_BASE..WARM_BASE + 64 * TRACE_BLOCK_BYTES).contains(&addr);
            let in_cold = (COLD_BASE..COLD_BASE + 128 * TRACE_BLOCK_BYTES).contains(&addr);
            let in_stream = (STREAM_BASE..STREAM_BASE + 256 * TRACE_BLOCK_BYTES).contains(&addr);
            assert!(in_hot || in_warm || in_cold || in_stream, "stray address {addr:#x}");
        }
    }

    #[test]
    fn branch_outcomes_follow_the_bias() {
        let p = WorkloadProfile {
            branch_bias: 0.95,
            branch_fraction: 0.5,
            load_fraction: 0.2,
            store_fraction: 0.1,
            static_branches: 8,
            ..WorkloadProfile::default()
        };
        let trace = sample(p, 100_000, 9);
        // For each static branch, the majority outcome should appear ~95% of
        // the time.
        let mut per_pc: std::collections::HashMap<u64, (u64, u64)> = Default::default();
        for i in &trace {
            if let InstrKind::Branch { pc, taken } = i.kind {
                let e = per_pc.entry(pc).or_default();
                if taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        for (&pc, &(taken, not_taken)) in &per_pc {
            let total = taken + not_taken;
            let majority = taken.max(not_taken) as f64 / total as f64;
            assert!(majority > 0.90, "branch {pc} majority share {majority}");
        }
    }

    #[test]
    fn dependency_distances_are_positive_and_mean_tracks_profile() {
        let p = WorkloadProfile {
            mean_dep_distance: 12.0,
            ..WorkloadProfile::default()
        };
        let trace = sample(p, 50_000, 21);
        let mean: f64 =
            trace.iter().map(|i| f64::from(i.dep_distance)).sum::<f64>() / trace.len() as f64;
        assert!(trace.iter().all(|i| i.dep_distance >= 1));
        assert!((mean - 12.0).abs() < 2.0, "observed mean dependency distance {mean}");
    }

    #[test]
    fn fp_profiles_emit_fp_operations() {
        let p = WorkloadProfile {
            suite: Suite::FloatingPoint,
            fp_fraction: 0.8,
            ..WorkloadProfile::default()
        };
        let trace = sample(p, 20_000, 2);
        let fp = trace.iter().filter(|i| i.kind.is_fp()).count();
        let alu = trace
            .iter()
            .filter(|i| !i.kind.is_memory() && !i.kind.is_branch())
            .count();
        assert!(fp as f64 / alu as f64 > 0.7);
    }

    #[test]
    fn core_zero_of_one_is_the_solo_stream_bit_for_bit() {
        let p = WorkloadProfile::default();
        let solo: Vec<_> = TraceGenerator::new(p.clone(), 42).take(2_000).collect();
        let cmp0: Vec<_> = TraceGenerator::for_core(p, 42, 0, 1).take(2_000).collect();
        assert_eq!(solo, cmp0);
    }

    #[test]
    fn per_core_streams_are_decorrelated() {
        let p = WorkloadProfile::default();
        let a: Vec<_> = TraceGenerator::for_core(p.clone(), 7, 0, 4).take(1_000).collect();
        let b: Vec<_> = TraceGenerator::for_core(p, 7, 1, 4).take(1_000).collect();
        assert_ne!(a, b);
    }

    fn sharing_profile(pattern: AccessPattern) -> WorkloadProfile {
        WorkloadProfile {
            pattern,
            shared_blocks: 64,
            hot_prob: 0.2,
            warm_prob: 0.0,
            cold_prob: 0.0,
            spatial_stride_prob: 0.0,
            ..WorkloadProfile::default()
        }
    }

    #[test]
    fn producer_consumer_stores_stay_in_the_own_window_and_loads_upstream() {
        let p = sharing_profile(AccessPattern::ProducerConsumer);
        let window = 64 / 4;
        for core in 0..4usize {
            let trace: Vec<_> =
                TraceGenerator::for_core(p.clone(), 3, core, 4).take(20_000).collect();
            let own = SHARED_BASE + core as u64 * window * TRACE_BLOCK_BYTES;
            let upstream =
                SHARED_BASE + ((core as u64 + 3) % 4) * window * TRACE_BLOCK_BYTES;
            for i in &trace {
                let Some(addr) = i.addr else { continue };
                if addr.0 < SHARED_BASE {
                    continue; // hot-region touch
                }
                let expect = if i.kind.is_store() { own } else { upstream };
                assert!(
                    (expect..expect + window * TRACE_BLOCK_BYTES).contains(&addr.0),
                    "core {core} {:?} at {:#x}",
                    i.kind,
                    addr.0
                );
            }
        }
    }

    #[test]
    fn false_sharing_interleaves_words_within_a_small_line_pool() {
        let p = sharing_profile(AccessPattern::FalseSharing);
        let mut words_per_core = Vec::new();
        for core in 0..4usize {
            let trace: Vec<_> =
                TraceGenerator::for_core(p.clone(), 5, core, 4).take(5_000).collect();
            let words: HashSet<u64> = trace
                .iter()
                .filter_map(|i| i.addr)
                .filter(|a| a.0 >= SHARED_BASE)
                .map(|a| a.0 % TRACE_BLOCK_BYTES)
                .collect();
            assert_eq!(words.len(), 1, "each core sticks to its own word");
            assert!(trace
                .iter()
                .filter_map(|i| i.addr)
                .filter(|a| a.0 >= SHARED_BASE)
                .all(|a| a.0 < SHARED_BASE + 64 * TRACE_BLOCK_BYTES));
            words_per_core.push(words.into_iter().next().unwrap());
        }
        let distinct: HashSet<u64> = words_per_core.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "four cores, four distinct words");
    }

    #[test]
    fn migratory_partitions_rotate_with_the_phase() {
        let mut p = sharing_profile(AccessPattern::Migratory);
        p.phase_period = 500;
        p.hot_prob = 0.0;
        let partition = 64 / 2 * TRACE_BLOCK_BYTES;
        let trace: Vec<_> = TraceGenerator::for_core(p, 9, 0, 2).take(3_000).collect();
        let mut seen_stage = [false; 2];
        for (n, i) in trace.iter().enumerate() {
            let Some(addr) = i.addr else { continue };
            let stage = ((addr.0 - SHARED_BASE) / partition) as usize;
            let expected = (n as u64 / 500) % 2;
            assert_eq!(stage as u64, expected, "instruction {n}");
            seen_stage[stage] = true;
        }
        assert_eq!(seen_stage, [true, true], "the working set migrated");
    }

    proptest! {
        #[test]
        fn generator_never_panics_and_respects_mix(seed in any::<u64>(), take in 100usize..2000) {
            let trace = sample(WorkloadProfile::default(), take, seed);
            prop_assert_eq!(trace.len(), take);
            for i in &trace {
                prop_assert_eq!(i.addr.is_some(), i.kind.is_memory());
                if i.kind.is_memory() {
                    // Addresses always land inside one of the four regions
                    // (strides only advance by a word at a time).
                    prop_assert!(i.addr.unwrap().0 >= HOT_BASE);
                }
            }
        }
    }
}
