//! The INT-like and FP-like benchmark suites used by every experiment.
//!
//! The paper runs all SPEC CPU2006 benchmarks except 483.xalancbmk. Since the
//! SPEC sources cannot be redistributed, each synthetic profile below stands
//! in for a *behaviour class* observed in that suite rather than for a
//! specific program: pointer-chasing codes with huge working sets, branchy
//! compression loops, streaming array kernels, stencil codes with mid-size
//! reuse, and so on. What matters for the experiments is the distribution of
//! working-set sizes around the capacities of the caches under study
//! (32 KB L1, 40–216 KB of L-NUCA tiles, 256 KB L2, 8 MB L3), the memory-op
//! density and the branch behaviour — those are the quantities the profiles
//! control.

use crate::profile::{AccessPattern, Suite, WorkloadProfile, WorkloadProfileBuilder};
use lnuca_types::UnknownNameError;

/// Convenience constructor used by the suite tables below; the suite tables
/// chain further builder calls for pattern-specific knobs.
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    suite: Suite,
    loads: f64,
    stores: f64,
    branches: f64,
    fp: f64,
    hot: u64,
    warm: u64,
    cold: u64,
    probs: (f64, f64, f64),
    stride: f64,
    dep: f64,
    bias: f64,
) -> WorkloadProfileBuilder {
    WorkloadProfile::builder(name)
        .suite(suite)
        .mix(loads, stores, branches, fp)
        .regions(hot, warm, cold)
        .stream_blocks(6_000_000)
        .region_probs(probs.0, probs.1, probs.2)
        .spatial_stride_prob(stride)
        .mean_dep_distance(dep)
        .branch_bias(bias)
        .static_branches(4_096)
}

/// Finishes a suite-table builder; every shipped profile is valid by
/// construction, so a failure here is a bug in the table itself.
fn built(builder: WorkloadProfileBuilder) -> WorkloadProfile {
    builder.build().expect("shipped suite profiles are valid")
}

/// The eleven INT-like synthetic benchmarks.
///
/// Integer codes are modelled with higher branch density, lower branch
/// predictability, smaller FP content and working sets concentrated in the
/// hot and warm regions (with one pointer-chasing outlier whose working set
/// overflows even the L3, like 429.mcf).
#[must_use]
pub fn spec_int_like() -> Vec<WorkloadProfile> {
    use Suite::Integer as I;
    let table = vec![
        // name                      ld    st    br    fp   hot   warm    cold      (hot,  warm,  cold)    stride dep  bias
        profile("int.compress",   I, 0.26, 0.12, 0.16, 0.02, 640, 2_400, 8_000, (0.755, 0.225, 0.016), 0.40, 5.0, 0.90),
        profile("int.pointer_chase", I, 0.31, 0.08, 0.17, 0.00, 256, 3_200, 12_000, (0.725, 0.250, 0.020), 0.10, 3.5, 0.88),
        profile("int.compiler",   I, 0.25, 0.13, 0.20, 0.01, 768, 2_600, 10_000, (0.755, 0.225, 0.016), 0.30, 5.5, 0.91),
        profile("int.game_tree",  I, 0.24, 0.09, 0.21, 0.02, 512, 2_000, 6_000, (0.770, 0.213, 0.013), 0.25, 4.5, 0.87),
        profile("int.sequence_match", I, 0.28, 0.10, 0.14, 0.03, 896, 2_200, 6_000, (0.775, 0.210, 0.011), 0.45, 6.5, 0.94),
        profile("int.chess_search", I, 0.23, 0.09, 0.20, 0.01, 512, 1_900, 7_000, (0.780, 0.205, 0.012), 0.22, 4.0, 0.88),
        profile("int.quantum_stream", I, 0.27, 0.07, 0.15, 0.04, 384, 1_800, 5_000, (0.770, 0.215, 0.011), 0.45, 8.0, 0.97),
        profile("int.video_decode", I, 0.29, 0.12, 0.13, 0.06, 768, 2_700, 9_000, (0.750, 0.230, 0.016), 0.45, 6.0, 0.93),
        profile("int.event_sim",  I, 0.26, 0.11, 0.18, 0.01, 640, 3_000, 12_000, (0.735, 0.243, 0.018), 0.28, 5.0, 0.90),
        profile("int.path_search", I, 0.27, 0.08, 0.19, 0.01, 512, 2_800, 10_000, (0.745, 0.235, 0.016), 0.26, 4.5, 0.89),
        profile("int.interpreter", I, 0.25, 0.12, 0.21, 0.01, 704, 2_100, 7_000, (0.765, 0.217, 0.014), 0.30, 5.0, 0.90),
    ];
    table.into_iter().map(built).collect()
}

/// The eleven FP-like synthetic benchmarks.
///
/// Floating-point codes are modelled with fewer, highly predictable branches,
/// higher FP-op density, strong spatial locality and larger warm/cold working
/// sets (stencils, dense linear algebra, streaming physics kernels), so a
/// larger share of their reuse lands beyond the first L-NUCA level — which is
/// exactly the Table III contrast between the Int. and FP. columns.
#[must_use]
pub fn spec_fp_like() -> Vec<WorkloadProfile> {
    use Suite::FloatingPoint as F;
    let table = vec![
        // name                     ld    st    br    fp   hot   warm    cold      (hot,  warm,  cold)    stride dep  bias
        profile("fp.wave_solver", F, 0.33, 0.11, 0.06, 0.70, 512, 3_600, 14_000, (0.675, 0.303, 0.018), 0.45, 9.0, 0.985),
        profile("fp.quantum_chem", F, 0.30, 0.12, 0.08, 0.65, 768, 3_000, 10_000, (0.700, 0.280, 0.015), 0.45, 8.0, 0.97),
        profile("fp.lattice_qcd", F, 0.34, 0.10, 0.05, 0.75, 384, 4_400, 16_000, (0.660, 0.317, 0.019), 0.45, 10.0, 0.99),
        profile("fp.hydro_stencil", F, 0.32, 0.13, 0.07, 0.68, 640, 4_000, 14_000, (0.670, 0.310, 0.017), 0.45, 9.0, 0.985),
        profile("fp.molecular_dyn", F, 0.29, 0.10, 0.09, 0.66, 896, 2_800, 9_000, (0.710, 0.270, 0.014), 0.40, 8.5, 0.97),
        profile("fp.relativity",  F, 0.33, 0.12, 0.05, 0.72, 512, 4_200, 15_000, (0.665, 0.313, 0.018), 0.45, 9.5, 0.99),
        profile("fp.fluid_lbm",   F, 0.30, 0.14, 0.04, 0.70, 448, 3_400, 12_000, (0.680, 0.297, 0.017), 0.45, 11.0, 0.995),
        profile("fp.weather",     F, 0.31, 0.12, 0.08, 0.67, 704, 3_700, 12_000, (0.680, 0.297, 0.017), 0.45, 8.5, 0.98),
        profile("fp.speech_hmm",  F, 0.32, 0.09, 0.10, 0.60, 832, 2_600, 8_000, (0.710, 0.273, 0.012), 0.42, 7.5, 0.96),
        profile("fp.linear_solver", F, 0.31, 0.11, 0.07, 0.69, 640, 3_900, 14_000, (0.670, 0.310, 0.017), 0.45, 9.0, 0.985),
        profile("fp.ray_trace",   F, 0.28, 0.09, 0.12, 0.62, 960, 2_400, 7_000, (0.725, 0.257, 0.012), 0.38, 7.0, 0.95),
    ];
    table.into_iter().map(built).collect()
}

/// The seven adversarial access-pattern benchmarks (ISSUE 4 expansion
/// plus the ISSUE 10 sharing classes).
///
/// Each profile exercises one [`AccessPattern`] class the stationary region
/// model cannot produce: a pointer chase whose working set overflows the
/// fabric (as in the cache-aware-programming literature), a strided
/// streaming kernel, a GUPS-like uniform-random-update table larger than
/// the L3, a phase-switching mix that cycles through all of them, and the
/// three CMP sharing classes (producer-consumer, migratory, false
/// sharing) that concentrate directory-coherence traffic. They are not
/// part of the paper's 22-benchmark reproduction ([`all`]); sweeps that
/// want them use [`extended`] or name them explicitly.
#[must_use]
pub fn adversarial() -> Vec<WorkloadProfile> {
    use Suite::{FloatingPoint as F, Integer as I};
    vec![
        // 24 576 cold blocks = 768 KB of chain: far beyond every L-NUCA
        // configuration and the 256 KB L2, comfortably inside the L3.
        built(
            profile("adv.pointer_chase", I, 0.32, 0.06, 0.15, 0.00, 256, 1_024, 24_576, (0.25, 0.0, 0.0), 0.05, 2.0, 0.86)
                .pattern(AccessPattern::PointerChase),
        ),
        // Stride of 3 blocks: never two consecutive accesses in one block,
        // so the walker defeats the spatial-stride shortcut the region
        // model relies on.
        built(
            profile("adv.stream", F, 0.35, 0.10, 0.05, 0.60, 512, 1_024, 4_096, (0.15, 0.0, 0.0), 0.0, 12.0, 0.995)
                .pattern(AccessPattern::Streaming)
                .stream_stride_blocks(3),
        ),
        // ~12 MB table (64 + 1 024 + 131 072 + 250 000 blocks of 32 B):
        // larger than the 8 MB L3, so uniform updates stress every level's
        // tag arrays at once.
        built(
            profile("adv.gups", I, 0.30, 0.15, 0.10, 0.00, 64, 1_024, 131_072, (0.0, 0.0, 0.0), 0.0, 8.0, 0.90)
                .pattern(AccessPattern::Gups)
                .stream_blocks(250_000),
        ),
        built(
            profile("adv.phase_mix", I, 0.28, 0.10, 0.16, 0.05, 512, 2_400, 16_384, (0.60, 0.25, 0.05), 0.30, 5.0, 0.90)
                .pattern(AccessPattern::PhaseMix)
                .phase_period(2_000),
        ),
        // The CMP sharing classes (ISSUE 10). On a single core each
        // degenerates to a benign private pattern, so they are safe in
        // every existing single-core matrix; on N cores they concentrate
        // coherence traffic by construction. 2 048 shared blocks = 64 KB
        // of hand-off buffer, cut into per-core windows.
        built(
            profile("sh.prodcons", I, 0.30, 0.20, 0.12, 0.00, 384, 1_024, 4_096, (0.30, 0.0, 0.0), 0.20, 5.0, 0.92)
                .pattern(AccessPattern::ProducerConsumer)
                .shared_blocks(2_048),
        ),
        // A 256-block (8 KB) migratory set whose home rotates every
        // 1 500 instructions: every hop is an ownership transfer.
        built(
            profile("sh.migratory", I, 0.30, 0.18, 0.14, 0.00, 384, 1_024, 4_096, (0.25, 0.0, 0.0), 0.15, 4.5, 0.90)
                .pattern(AccessPattern::Migratory)
                .shared_blocks(256)
                .phase_period(1_500),
        ),
        // 32 shared lines (1 KB) hammered word-interleaved by every core:
        // almost no data is shared, almost every line is contended.
        built(
            profile("sh.falseshare", I, 0.28, 0.22, 0.12, 0.00, 256, 1_024, 4_096, (0.20, 0.0, 0.0), 0.10, 5.0, 0.92)
                .pattern(AccessPattern::FalseSharing)
                .shared_blocks(32),
        ),
    ]
}

/// Both suites concatenated (INT first), as used by whole-run sweeps.
#[must_use]
pub fn all() -> Vec<WorkloadProfile> {
    let mut v = spec_int_like();
    v.extend(spec_fp_like());
    v
}

/// Every profile the crate ships: the paper's 22 benchmarks ([`all`])
/// followed by the seven [`adversarial`] access-pattern classes.
#[must_use]
pub fn extended() -> Vec<WorkloadProfile> {
    let mut v = all();
    v.extend(adversarial());
    v
}

/// Looks up a profile by name (case-insensitively) in any suite, including
/// the adversarial expansion.
///
/// # Errors
///
/// Returns an [`UnknownNameError`] listing every valid name when `name`
/// matches nothing — so a typo in a bench env knob (`LNUCA_WORKLOADS`) or a
/// scenario file fails loudly instead of silently running the wrong set.
/// The error converts into `ConfigError` via `?` where constructors need
/// it; the scenario loader of `lnuca-sim` reports its unknown-name failures
/// through the same type.
pub fn by_name(name: &str) -> Result<WorkloadProfile, UnknownNameError> {
    let wanted = name.trim();
    // A `.lnt` name is not a suite entry but an ingested binary trace: the
    // profile replays the file at that path (opened when a generator is
    // constructed). This is how scenarios and `LNUCA_WORKLOADS` reference
    // trace-backed workloads.
    if wanted.ends_with(".lnt") {
        return Ok(crate::trace::trace_profile(wanted));
    }
    let profiles = extended();
    match profiles.iter().find(|p| p.name.eq_ignore_ascii_case(wanted)) {
        Some(p) => Ok(p.clone()),
        None => Err(UnknownNameError::new(
            "workload",
            wanted,
            profiles.iter().map(|p| p.name.as_str()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suites_have_eleven_benchmarks_each() {
        assert_eq!(spec_int_like().len(), 11);
        assert_eq!(spec_fp_like().len(), 11);
        assert_eq!(all().len(), 22);
        assert_eq!(adversarial().len(), 7);
        assert_eq!(extended().len(), 29);
    }

    #[test]
    fn every_profile_is_valid() {
        for p in extended() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique_and_suites_consistent() {
        let names: HashSet<String> = extended().into_iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 29);
        assert!(spec_int_like().iter().all(|p| p.suite == Suite::Integer));
        assert!(spec_fp_like().iter().all(|p| p.suite == Suite::FloatingPoint));
        assert!(all().iter().all(|p| p.pattern == AccessPattern::Regions));
    }

    #[test]
    fn adversarial_profiles_cover_every_new_pattern_class() {
        let patterns: Vec<AccessPattern> = adversarial().iter().map(|p| p.pattern).collect();
        assert_eq!(
            patterns,
            vec![
                AccessPattern::PointerChase,
                AccessPattern::Streaming,
                AccessPattern::Gups,
                AccessPattern::PhaseMix,
                AccessPattern::ProducerConsumer,
                AccessPattern::Migratory,
                AccessPattern::FalseSharing,
            ]
        );
    }

    #[test]
    fn fp_profiles_have_larger_warm_working_sets_on_average() {
        let avg = |v: &[WorkloadProfile]| {
            v.iter().map(|p| p.warm_blocks as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg(&spec_fp_like()) > avg(&spec_int_like()));
    }

    #[test]
    fn fp_profiles_branch_less_and_more_predictably() {
        let int = spec_int_like();
        let fp = spec_fp_like();
        let mean = |v: &[WorkloadProfile], f: fn(&WorkloadProfile) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        assert!(mean(&fp, |p| p.branch_fraction) < mean(&int, |p| p.branch_fraction));
        assert!(mean(&fp, |p| p.branch_bias) > mean(&int, |p| p.branch_bias));
    }

    #[test]
    fn by_name_finds_profiles_case_insensitively() {
        assert!(by_name("int.compress").is_ok());
        assert!(by_name("fp.weather").is_ok());
        assert!(by_name("adv.gups").is_ok());
        // Case and surrounding whitespace do not matter (env knobs).
        assert_eq!(by_name("INT.Compress").unwrap().name, "int.compress");
        assert_eq!(by_name("  Adv.Phase_Mix ").unwrap().name, "adv.phase_mix");
    }

    #[test]
    fn by_name_errors_list_every_valid_name() {
        let err = by_name("does.not.exist").unwrap_err().to_string();
        assert!(err.contains("does.not.exist"), "error names the offender: {err}");
        for p in extended() {
            assert!(err.contains(&p.name), "error must list {}: {err}", p.name);
        }
    }
}
