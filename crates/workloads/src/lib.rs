//! Synthetic workload generation for the Light NUCA reproduction.
//!
//! The paper evaluates L-NUCA with SPEC CPU2006 (100 M-instruction SimPoint
//! regions). SPEC binaries and traces are proprietary, so this crate provides
//! the substitution documented in `DESIGN.md`: parameterised, deterministic
//! instruction-trace generators whose *memory reuse behaviour* — how much of
//! the working set fits at each level of the hierarchy — and *control/ILP
//! behaviour* — branch fraction and predictability, dependency distances —
//! reproduce the property classes the paper's evaluation depends on.
//!
//! * [`Instr`] / [`InstrKind`] — the trace element consumed by `lnuca-cpu`,
//! * [`WorkloadProfile`] — the knobs of one synthetic benchmark,
//! * [`TraceGenerator`] — a seeded iterator of instructions,
//! * [`suites`] — the INT-like and FP-like benchmark suites used by every
//!   experiment (Figs. 4 and 5, Table III).
//!
//! # Example
//!
//! ```
//! use lnuca_workloads::{suites, TraceGenerator};
//!
//! let profile = &suites::spec_int_like()[0];
//! let trace: Vec<_> = TraceGenerator::new(profile.clone(), 42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! let loads = trace.iter().filter(|i| i.kind.is_load()).count();
//! assert!(loads > 100, "an INT-like profile issues plenty of loads");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod instr;
pub mod profile;
pub mod suites;
pub mod trace;

pub use generator::TraceGenerator;
pub use instr::{Instr, InstrKind};
pub use profile::{AccessPattern, Suite, WorkloadProfile};
pub use trace::{IngestError, TraceData, TraceError, TraceRecord, TraceReplay};
