//! The `lnuca-trace/v1` binary trace format and its streaming replay.
//!
//! Real-program memory traces enter the repository through two steps
//! (DESIGN.md §16): `lnuca ingest` converts textual dump lines into the
//! compact indexed binary described here, and [`AccessPattern::Trace`]
//! profiles replay the binary through [`crate::TraceGenerator`] exactly like
//! a synthetic pattern — deterministically, so every engine and batch size
//! sees the identical instruction stream.
//!
//! # Layout (`lnuca-trace/v1`)
//!
//! All integers are little-endian. The file is a 32-byte header, a chunk
//! index, and one delta-encoded payload per chunk:
//!
//! ```text
//! header   magic "LNUCATR1" (8) · version u32 · chunk_count u32
//!          · record_count u64 · index_checksum u64 (FNV-1a over the index)
//! index    chunk_count × 48 bytes: payload_offset u64 · payload_len u64
//!          · records u64 · base_addr u64 · base_pc u64
//!          · payload_checksum u64 (FNV-1a over the payload)
//! payload  op streams (see below), one independent stream per chunk
//! ```
//!
//! The header and index carry absolute offsets and per-chunk bases, so a
//! reader can map the file and decode any chunk without touching the
//! others — the format is mmap-able by construction even though this
//! `#![forbid(unsafe_code)]` crate reads it through owned buffers.
//!
//! Each chunk covers up to [`CHUNK_RECORDS`] records. Within a chunk,
//! addresses and PCs are delta-encoded (zigzag + LEB128 varint) against the
//! previous record, starting from the chunk's `base_addr`/`base_pc` (the
//! first record's values, so the first delta is zero). Two op kinds exist:
//!
//! * `0x00`/`0x01` — one read/write: `svarint addr_delta · svarint pc_delta`
//! * `0x02`/`0x03` — a read/write **run** of `count ≥ 3` records with a
//!   constant address stride and one shared PC:
//!   `varint count · svarint first_delta · svarint stride · svarint pc_delta`
//!
//! Runs are what make strided dumps (array sweeps, block copies) compress
//! by an order of magnitude; irregular traces degrade gracefully to the
//! single-record ops.

use crate::profile::{AccessPattern, WorkloadProfile};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every `lnuca-trace/v1` file.
pub const TRACE_MAGIC: [u8; 8] = *b"LNUCATR1";
/// Format version this module reads and writes.
pub const TRACE_VERSION: u32 = 1;
/// Maximum records per chunk (the decode/streaming granularity).
pub const CHUNK_RECORDS: usize = 4096;
/// Exclusive upper bound on addresses and PCs: 2^56, so deltas always fit
/// comfortably in an `i64` and corrupt files cannot smuggle in pointer-width
/// garbage.
pub const ADDR_LIMIT: u64 = 1 << 56;

const HEADER_BYTES: usize = 32;
const INDEX_ENTRY_BYTES: usize = 48;
/// Minimum run length worth a run op (a run op costs ≥ 4 bytes, three
/// singles cost ≥ 6).
const MIN_RUN: usize = 3;

/// One memory reference of an ingested trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Byte address of the access.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub write: bool,
    /// Program counter of the access (0 when the dump has no PC column).
    pub pc: u64,
}

/// Why a binary trace was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// The bytes violate the `lnuca-trace/v1` layout (truncation, bad
    /// magic/version, checksum mismatch, out-of-range values).
    Format {
        /// Byte offset of the violation.
        offset: usize,
        /// What is wrong there.
        message: String,
    },
}

impl TraceError {
    fn format(offset: usize, message: impl Into<String>) -> Self {
        TraceError::Format {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            TraceError::Format { offset, message } => {
                write!(f, "invalid lnuca-trace/v1 at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Why a textual dump line was rejected, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IngestError {}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_svarint(out: &mut Vec<u8>, v: i64) {
    // Zigzag: small magnitudes of either sign encode in one byte.
    push_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn read_varint(bytes: &[u8], pos: &mut usize, base: usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(TraceError::format(base + *pos, "payload truncated inside a varint"));
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::format(base + *pos, "varint overflows 64 bits"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_svarint(bytes: &[u8], pos: &mut usize, base: usize) -> Result<i64, TraceError> {
    let raw = read_varint(bytes, pos, base)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// FNV-1a over a byte slice — the checksum pinning the index and each
/// chunk payload.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], offset: usize) -> Result<u32, TraceError> {
    bytes
        .get(offset..offset + 4)
        .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
        .ok_or_else(|| TraceError::format(offset, "file truncated"))
}

fn get_u64(bytes: &[u8], offset: usize) -> Result<u64, TraceError> {
    bytes
        .get(offset..offset + 8)
        .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        .ok_or_else(|| TraceError::format(offset, "file truncated"))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Length of the greedy run starting at `records[i]`: same write flag, same
/// PC, constant signed address stride.
fn run_len(records: &[TraceRecord], i: usize) -> usize {
    let first = records[i];
    let Some(second) = records.get(i + 1) else { return 1 };
    if second.write != first.write || second.pc != first.pc {
        return 1;
    }
    let stride = second.addr.wrapping_sub(first.addr) as i64;
    let mut len = 2;
    while let Some(next) = records.get(i + len) {
        let prev = records[i + len - 1];
        if next.write != first.write
            || next.pc != first.pc
            || next.addr.wrapping_sub(prev.addr) as i64 != stride
        {
            break;
        }
        len += 1;
    }
    len
}

/// Encodes records as a complete `lnuca-trace/v1` file.
///
/// # Errors
///
/// Returns a [`TraceError`] if `records` is empty or any address/PC reaches
/// [`ADDR_LIMIT`].
pub fn encode(records: &[TraceRecord]) -> Result<Vec<u8>, TraceError> {
    if records.is_empty() {
        return Err(TraceError::format(0, "a trace needs at least one record"));
    }
    for (i, r) in records.iter().enumerate() {
        if r.addr >= ADDR_LIMIT || r.pc >= ADDR_LIMIT {
            return Err(TraceError::format(
                0,
                format!("record {i}: address/pc must be below 2^56, got addr {:#x} pc {:#x}", r.addr, r.pc),
            ));
        }
    }
    let chunks: Vec<&[TraceRecord]> = records.chunks(CHUNK_RECORDS).collect();
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(chunks.len());
    for chunk in &chunks {
        let mut payload = Vec::new();
        let mut prev_addr = chunk[0].addr as i64;
        let mut prev_pc = chunk[0].pc as i64;
        let mut i = 0;
        while i < chunk.len() {
            let len = run_len(chunk, i).min(chunk.len() - i);
            let r = chunk[i];
            if len >= MIN_RUN {
                let stride = chunk[i + 1].addr.wrapping_sub(r.addr) as i64;
                payload.push(if r.write { 3 } else { 2 });
                push_varint(&mut payload, len as u64);
                push_svarint(&mut payload, r.addr as i64 - prev_addr);
                push_svarint(&mut payload, stride);
                push_svarint(&mut payload, r.pc as i64 - prev_pc);
                prev_addr = chunk[i + len - 1].addr as i64;
                prev_pc = r.pc as i64;
                i += len;
            } else {
                payload.push(u8::from(r.write));
                push_svarint(&mut payload, r.addr as i64 - prev_addr);
                push_svarint(&mut payload, r.pc as i64 - prev_pc);
                prev_addr = r.addr as i64;
                prev_pc = r.pc as i64;
                i += 1;
            }
        }
        payloads.push(payload);
    }

    let index_bytes = chunks.len() * INDEX_ENTRY_BYTES;
    let mut index = Vec::with_capacity(index_bytes);
    let mut offset = (HEADER_BYTES + index_bytes) as u64;
    for (chunk, payload) in chunks.iter().zip(&payloads) {
        push_u64(&mut index, offset);
        push_u64(&mut index, payload.len() as u64);
        push_u64(&mut index, chunk.len() as u64);
        push_u64(&mut index, chunk[0].addr);
        push_u64(&mut index, chunk[0].pc);
        push_u64(&mut index, fnv1a(payload));
        offset += payload.len() as u64;
    }

    let mut out = Vec::with_capacity(HEADER_BYTES + index.len() + payloads.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(&TRACE_MAGIC);
    push_u32(&mut out, TRACE_VERSION);
    push_u32(&mut out, chunks.len() as u32);
    push_u64(&mut out, records.len() as u64);
    push_u64(&mut out, fnv1a(&index));
    out.extend_from_slice(&index);
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    Ok(out)
}

/// Encodes records and writes them to `path`.
///
/// # Errors
///
/// Returns a [`TraceError`] on encoding or I/O failure.
pub fn write_file(path: impl AsRef<Path>, records: &[TraceRecord]) -> Result<(), TraceError> {
    let path = path.as_ref();
    let bytes = encode(records)?;
    std::fs::write(path, bytes).map_err(|e| TraceError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkIndex {
    offset: usize,
    len: usize,
    records: usize,
    base_addr: u64,
    base_pc: u64,
}

/// A validated, immutable in-memory `lnuca-trace/v1` file. Cloning is cheap
/// (the bytes are shared), so every batch member and engine can hold its own
/// handle onto one loaded corpus.
#[derive(Debug, Clone)]
pub struct TraceData {
    bytes: Arc<[u8]>,
    chunks: Arc<[ChunkIndex]>,
    records: u64,
}

impl TraceData {
    /// Parses and fully validates a trace file image: magic, version,
    /// counts, index bounds, the index checksum and every chunk payload
    /// checksum. A file that loads successfully decodes successfully.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError::Format`] describing the first violation.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        if bytes.len() < HEADER_BYTES {
            return Err(TraceError::format(
                bytes.len(),
                format!("file is {} bytes, shorter than the {HEADER_BYTES}-byte header", bytes.len()),
            ));
        }
        if bytes[..8] != TRACE_MAGIC {
            return Err(TraceError::format(0, "bad magic (expected \"LNUCATR1\")"));
        }
        let version = get_u32(&bytes, 8)?;
        if version != TRACE_VERSION {
            return Err(TraceError::format(
                8,
                format!("unsupported version {version} (this reader handles {TRACE_VERSION})"),
            ));
        }
        let chunk_count = get_u32(&bytes, 12)? as usize;
        let record_count = get_u64(&bytes, 16)?;
        let index_checksum = get_u64(&bytes, 24)?;
        if chunk_count == 0 || record_count == 0 {
            return Err(TraceError::format(12, "a trace needs at least one chunk and one record"));
        }
        let index_end = HEADER_BYTES + chunk_count * INDEX_ENTRY_BYTES;
        let Some(index) = bytes.get(HEADER_BYTES..index_end) else {
            return Err(TraceError::format(
                bytes.len(),
                format!("file truncated inside the {chunk_count}-entry chunk index"),
            ));
        };
        if fnv1a(index) != index_checksum {
            return Err(TraceError::format(24, "chunk index checksum mismatch"));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        let mut expected_offset = index_end;
        let mut total_records = 0u64;
        for i in 0..chunk_count {
            let entry = HEADER_BYTES + i * INDEX_ENTRY_BYTES;
            let offset = get_u64(&bytes, entry)? as usize;
            let len = get_u64(&bytes, entry + 8)? as usize;
            let records = get_u64(&bytes, entry + 16)? as usize;
            let base_addr = get_u64(&bytes, entry + 24)?;
            let base_pc = get_u64(&bytes, entry + 32)?;
            let checksum = get_u64(&bytes, entry + 40)?;
            if offset != expected_offset {
                return Err(TraceError::format(
                    entry,
                    format!("chunk {i} starts at {offset}, expected {expected_offset}"),
                ));
            }
            if records == 0 || records > CHUNK_RECORDS {
                return Err(TraceError::format(
                    entry + 16,
                    format!("chunk {i} claims {records} records (1..={CHUNK_RECORDS} allowed)"),
                ));
            }
            if base_addr >= ADDR_LIMIT || base_pc >= ADDR_LIMIT {
                return Err(TraceError::format(entry + 24, format!("chunk {i} base beyond 2^56")));
            }
            let Some(payload) = bytes.get(offset..offset + len) else {
                return Err(TraceError::format(
                    bytes.len(),
                    format!("file truncated inside chunk {i}'s payload"),
                ));
            };
            if fnv1a(payload) != checksum {
                return Err(TraceError::format(offset, format!("chunk {i} payload checksum mismatch")));
            }
            chunks.push(ChunkIndex {
                offset,
                len,
                records,
                base_addr,
                base_pc,
            });
            expected_offset = offset + len;
            total_records += records as u64;
        }
        if total_records != record_count {
            return Err(TraceError::format(
                16,
                format!("header claims {record_count} records, chunks hold {total_records}"),
            ));
        }
        if expected_offset != bytes.len() {
            return Err(TraceError::format(
                expected_offset,
                format!("{} trailing bytes after the last chunk", bytes.len() - expected_offset),
            ));
        }
        Ok(TraceData {
            bytes: bytes.into(),
            chunks: chunks.into(),
            records: record_count,
        })
    }

    /// Loads and validates a trace file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read, [`TraceError::Format`]
    /// if it is not a valid `lnuca-trace/v1` image.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_bytes(bytes)
    }

    /// Total records in the trace.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Number of chunks in the trace.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Decodes one chunk into `out` (cleared first).
    ///
    /// Validation happened at load time, so decoding cannot fail on a
    /// loaded trace; an inconsistency here would mean the bytes changed
    /// underneath us and is reported as an error anyway.
    fn decode_chunk_into(&self, chunk: usize, out: &mut Vec<TraceRecord>) -> Result<(), TraceError> {
        let idx = self.chunks[chunk];
        let payload = &self.bytes[idx.offset..idx.offset + idx.len];
        out.clear();
        let mut prev_addr = idx.base_addr as i64;
        let mut prev_pc = idx.base_pc as i64;
        let mut pos = 0;
        while out.len() < idx.records {
            let Some(&op) = payload.get(pos) else {
                return Err(TraceError::format(idx.offset + pos, "payload ends before its record count"));
            };
            pos += 1;
            match op {
                0 | 1 => {
                    prev_addr += read_svarint(payload, &mut pos, idx.offset)?;
                    prev_pc += read_svarint(payload, &mut pos, idx.offset)?;
                    out.push(checked_record(prev_addr, op == 1, prev_pc, idx.offset + pos)?);
                }
                2 | 3 => {
                    let count = read_varint(payload, &mut pos, idx.offset)?;
                    let first = prev_addr + read_svarint(payload, &mut pos, idx.offset)?;
                    let stride = read_svarint(payload, &mut pos, idx.offset)?;
                    let pc = prev_pc + read_svarint(payload, &mut pos, idx.offset)?;
                    if count < MIN_RUN as u64 || out.len() as u64 + count > idx.records as u64 {
                        return Err(TraceError::format(
                            idx.offset + pos,
                            format!("run of {count} records overflows its chunk"),
                        ));
                    }
                    let mut addr = first;
                    for _ in 0..count {
                        out.push(checked_record(addr, op == 3, pc, idx.offset + pos)?);
                        addr += stride;
                    }
                    prev_addr = first + stride * (count as i64 - 1);
                    prev_pc = pc;
                }
                other => {
                    return Err(TraceError::format(
                        idx.offset + pos - 1,
                        format!("unknown op byte {other:#x}"),
                    ));
                }
            }
        }
        if pos != payload.len() {
            return Err(TraceError::format(
                idx.offset + pos,
                format!("{} trailing bytes after the chunk's records", payload.len() - pos),
            ));
        }
        Ok(())
    }

    /// Decodes the whole trace (tests and tools; the simulator streams
    /// through [`TraceReplay`] instead).
    ///
    /// # Errors
    ///
    /// See [`TraceData::from_bytes`] — a loaded trace decodes fully.
    pub fn decode_all(&self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut all = Vec::with_capacity(usize::try_from(self.records).unwrap_or(0));
        let mut buf = Vec::new();
        for chunk in 0..self.chunks.len() {
            self.decode_chunk_into(chunk, &mut buf)?;
            all.extend_from_slice(&buf);
        }
        Ok(all)
    }
}

fn checked_record(addr: i64, write: bool, pc: i64, offset: usize) -> Result<TraceRecord, TraceError> {
    if !(0..ADDR_LIMIT as i64).contains(&addr) || !(0..ADDR_LIMIT as i64).contains(&pc) {
        return Err(TraceError::format(
            offset,
            format!("decoded address/pc out of range (addr {addr:#x}, pc {pc:#x})"),
        ));
    }
    Ok(TraceRecord {
        addr: addr as u64,
        write,
        pc: pc as u64,
    })
}

/// A streaming, infinitely-wrapping reader over a loaded trace: one chunk
/// is decoded at a time, and reaching the end restarts from the first
/// record — matching the synthetic generators' infinite-iterator contract,
/// so a short trace can still drive an arbitrarily long run.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    data: TraceData,
    chunk: usize,
    buf: Vec<TraceRecord>,
    pos: usize,
}

impl TraceReplay {
    /// Starts a replay at the first record.
    #[must_use]
    pub fn new(data: TraceData) -> Self {
        TraceReplay {
            data,
            chunk: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next record, wrapping at the end of the trace.
    pub fn next_record(&mut self) -> TraceRecord {
        if self.pos >= self.buf.len() {
            if self.chunk >= self.data.chunk_count() {
                self.chunk = 0;
            }
            let chunk = self.chunk;
            self.data
                .decode_chunk_into(chunk, &mut self.buf)
                .expect("loaded traces decode (validated at load time)");
            self.chunk += 1;
            self.pos = 0;
        }
        let record = self.buf[self.pos];
        self.pos += 1;
        record
    }
}

// ---------------------------------------------------------------------------
// Textual ingestion
// ---------------------------------------------------------------------------

fn parse_number(raw: &str, line: usize, what: &str) -> Result<u64, IngestError> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    let value = parsed.map_err(|_| IngestError {
        line,
        message: format!("{what} {raw:?} is not a decimal or 0x-prefixed hex integer"),
    })?;
    if value >= ADDR_LIMIT {
        return Err(IngestError {
            line,
            message: format!("{what} {raw} is at or above the 2^56 limit"),
        });
    }
    Ok(value)
}

/// Parses a textual dump into records, auto-detecting its dialect.
///
/// Two dialects are recognised:
///
/// * **Native** — each non-empty, non-`#`-comment line is
///   `<kind> <addr> [pc]` with whitespace separators; `kind` is one of
///   `r`/`read`/`l`/`ld`/`load` or `w`/`write`/`s`/`st`/`store`
///   (case-insensitive); numbers are decimal or `0x`-prefixed hex.
/// * **Valgrind lackey** (`valgrind --tool=lackey --trace-mem=yes`) —
///   lines are `<kind> <addr>,<size>` where `kind` is uppercase `I`
///   (instruction fetch), `L` (load), `S` (store) or `M` (modify);
///   addresses are bare hex. `I` lines emit no record but set the pc
///   attached to the data records that follow; `M` expands to a load
///   followed by a store at the same address; the access size is
///   validated and discarded (the simulator works in whole lines).
///   Valgrind `==pid==` banner lines ride along in real dumps and are
///   skipped.
///
/// The dialect is decided by the first content line: an uppercase
/// `I`/`L`/`S`/`M` kind whose operand contains a comma selects lackey,
/// anything else the native dialect.
///
/// # Errors
///
/// Returns an [`IngestError`] carrying the 1-based line number of the first
/// malformed line, or of line 0 when the dump holds no records at all.
pub fn ingest_text(text: &str) -> Result<Vec<TraceRecord>, IngestError> {
    if looks_like_lackey(text) {
        ingest_lackey(text)
    } else {
        ingest_native(text)
    }
}

/// True when the first content line carries an uppercase lackey kind with a
/// comma-joined `addr,size` operand. The native dialect also accepts
/// uppercase `L`/`S` kinds, but never a comma, so the pair is unambiguous.
fn looks_like_lackey(text: &str) -> bool {
    for raw_line in text.lines() {
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() || content.starts_with("==") {
            continue;
        }
        let mut fields = content.split_whitespace();
        let kind = fields.next().unwrap_or("");
        return matches!(kind, "I" | "L" | "S" | "M")
            && fields.next().is_some_and(|operand| operand.contains(','));
    }
    false
}

fn parse_lackey_hex(raw: &str, line: usize, what: &str) -> Result<u64, IngestError> {
    let digits = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")).unwrap_or(raw);
    let value = u64::from_str_radix(digits, 16).map_err(|_| IngestError {
        line,
        message: format!("{what} {raw:?} is not a hex integer"),
    })?;
    if value >= ADDR_LIMIT {
        return Err(IngestError {
            line,
            message: format!("{what} {raw} is at or above the 2^56 limit"),
        });
    }
    Ok(value)
}

fn ingest_lackey(text: &str) -> Result<Vec<TraceRecord>, IngestError> {
    let mut records = Vec::new();
    // Lackey interleaves `I` fetch lines with the data records the decoded
    // instruction performs, so the last fetch address is the natural pc.
    let mut pc = 0u64;
    for (i, raw_line) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() || content.starts_with("==") {
            continue;
        }
        let mut fields = content.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let Some(operand) = fields.next() else {
            return Err(IngestError {
                line,
                message: format!("lackey record {kind:?} is missing its `addr,size` operand"),
            });
        };
        if let Some(extra) = fields.next() {
            return Err(IngestError {
                line,
                message: format!("unexpected trailing field {extra:?} (lackey lines are `<kind> <addr>,<size>`)"),
            });
        }
        let Some((addr_raw, size_raw)) = operand.split_once(',') else {
            return Err(IngestError {
                line,
                message: format!("lackey operand {operand:?} is not an `addr,size` pair"),
            });
        };
        let addr = parse_lackey_hex(addr_raw, line, "address")?;
        let size: u64 = size_raw.parse().map_err(|_| IngestError {
            line,
            message: format!("access size {size_raw:?} is not a decimal integer"),
        })?;
        if size == 0 {
            return Err(IngestError {
                line,
                message: "access size 0 is not a memory access".to_owned(),
            });
        }
        match kind {
            "I" => pc = addr,
            "L" => records.push(TraceRecord { addr, write: false, pc }),
            "S" => records.push(TraceRecord { addr, write: true, pc }),
            "M" => {
                records.push(TraceRecord { addr, write: false, pc });
                records.push(TraceRecord { addr, write: true, pc });
            }
            other => {
                return Err(IngestError {
                    line,
                    message: format!("unknown lackey access kind {other:?} (expected I, L, S or M)"),
                })
            }
        }
    }
    if records.is_empty() {
        return Err(IngestError {
            line: 0,
            message: "the dump holds no records".to_owned(),
        });
    }
    Ok(records)
}

fn ingest_native(text: &str) -> Result<Vec<TraceRecord>, IngestError> {
    let mut records = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let write = match kind.to_ascii_lowercase().as_str() {
            "r" | "read" | "l" | "ld" | "load" => false,
            "w" | "write" | "s" | "st" | "store" => true,
            other => {
                return Err(IngestError {
                    line,
                    message: format!(
                        "unknown access kind {other:?} (expected r/read/l/ld/load or w/write/s/st/store)"
                    ),
                })
            }
        };
        let Some(addr_raw) = fields.next() else {
            return Err(IngestError {
                line,
                message: "missing address after the access kind".to_owned(),
            });
        };
        let addr = parse_number(addr_raw, line, "address")?;
        let pc = match fields.next() {
            Some(pc_raw) => parse_number(pc_raw, line, "pc")?,
            None => 0,
        };
        if let Some(extra) = fields.next() {
            return Err(IngestError {
                line,
                message: format!("unexpected trailing field {extra:?} (lines are `<kind> <addr> [pc]`)"),
            });
        }
        records.push(TraceRecord { addr, write, pc });
    }
    if records.is_empty() {
        return Err(IngestError {
            line: 0,
            message: "the dump holds no records".to_owned(),
        });
    }
    Ok(records)
}

/// The workload profile replaying the trace at `path`: name and
/// `trace_path` are the path itself, pattern [`AccessPattern::Trace`],
/// every other knob at the defaults. The file is opened when a
/// [`crate::TraceGenerator`] is constructed, not here, so profiles can be
/// built (and scenarios parsed) away from the corpus directory.
#[must_use]
pub fn trace_profile(path: &str) -> WorkloadProfile {
    let mut profile = WorkloadProfile::default();
    profile.name = path.to_owned();
    profile.pattern = AccessPattern::Trace;
    profile.trace_path = Some(path.to_owned());
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_records(n: usize) -> Vec<TraceRecord> {
        // Interleave a strided sweep (run-compressible), a constant-stride
        // store burst, and irregular singles.
        let mut records = Vec::with_capacity(n);
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let record = match i % 16 {
                0..=7 => TraceRecord { addr: 0x1000 + i as u64 * 64, write: false, pc: 0x400100 },
                8..=11 => TraceRecord { addr: 0x8_0000 + i as u64 * 8, write: true, pc: 0x400200 },
                _ => TraceRecord { addr: x % ADDR_LIMIT, write: x & 1 == 0, pc: x >> 9 & (ADDR_LIMIT - 1) },
            };
            records.push(record);
        }
        records
    }

    #[test]
    fn encode_decode_round_trip_is_identity() {
        for n in [1, 2, 3, 100, CHUNK_RECORDS, CHUNK_RECORDS + 1, 3 * CHUNK_RECORDS + 17] {
            let records = mixed_records(n);
            let bytes = encode(&records).unwrap();
            let data = TraceData::from_bytes(bytes).unwrap();
            assert_eq!(data.record_count(), n as u64);
            assert_eq!(data.decode_all().unwrap(), records, "n = {n}");
        }
    }

    #[test]
    fn runs_compress_strided_traces() {
        let strided: Vec<TraceRecord> = (0..2000)
            .map(|i| TraceRecord { addr: 0x1000 + i * 64, write: false, pc: 0x400 })
            .collect();
        let bytes = encode(&strided).unwrap();
        // One run op per chunk: far below a byte per record.
        assert!(bytes.len() < strided.len(), "strided trace encodes to {} bytes", bytes.len());
        assert_eq!(TraceData::from_bytes(bytes).unwrap().decode_all().unwrap(), strided);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let records = mixed_records(600);
        let bytes = encode(&records).unwrap();
        for cut in [0, 4, HEADER_BYTES - 1, HEADER_BYTES + 10, bytes.len() / 2, bytes.len() - 1] {
            let err = TraceData::from_bytes(bytes[..cut].to_vec());
            assert!(err.is_err(), "truncation at {cut} must be rejected");
        }
    }

    #[test]
    fn corruption_is_rejected_with_offsets() {
        let bytes = encode(&mixed_records(100)).unwrap();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(TraceData::from_bytes(bad).unwrap_err().to_string().contains("magic"));
        // Version.
        let mut bad = bytes.clone();
        bad[8] = 9;
        assert!(TraceData::from_bytes(bad).unwrap_err().to_string().contains("version"));
        // Index bytes (checksum catches it).
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 3] ^= 0x55;
        assert!(TraceData::from_bytes(bad).unwrap_err().to_string().contains("checksum"));
        // Payload bytes (per-chunk checksum catches it).
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x55;
        assert!(TraceData::from_bytes(bad).unwrap_err().to_string().contains("checksum"));
    }

    #[test]
    fn empty_and_out_of_range_traces_are_rejected() {
        assert!(encode(&[]).is_err());
        let err = encode(&[TraceRecord { addr: ADDR_LIMIT, write: false, pc: 0 }]).unwrap_err();
        assert!(err.to_string().contains("2^56"), "{err}");
    }

    #[test]
    fn replay_wraps_deterministically() {
        let records = mixed_records(10);
        let data = TraceData::from_bytes(encode(&records).unwrap()).unwrap();
        let mut replay = TraceReplay::new(data);
        let first_lap: Vec<TraceRecord> = (0..10).map(|_| replay.next_record()).collect();
        let second_lap: Vec<TraceRecord> = (0..10).map(|_| replay.next_record()).collect();
        assert_eq!(first_lap, records);
        assert_eq!(second_lap, records, "the replay wraps back to the first record");
    }

    #[test]
    fn ingest_parses_kinds_numbers_and_comments() {
        let text = "# a comment\n\
                    r 0x1000 0x400\n\
                    W 4096\n\
                    load 0x2000 0x404  # trailing comment\n\
                    \n\
                    st 0x3000 16\n";
        let records = ingest_text(text).unwrap();
        assert_eq!(
            records,
            vec![
                TraceRecord { addr: 0x1000, write: false, pc: 0x400 },
                TraceRecord { addr: 4096, write: true, pc: 0 },
                TraceRecord { addr: 0x2000, write: false, pc: 0x404 },
                TraceRecord { addr: 0x3000, write: true, pc: 16 },
            ]
        );
    }

    #[test]
    fn ingest_errors_carry_line_numbers() {
        let err = ingest_text("r 0x10\nq 0x20\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(ingest_text("r\n").unwrap_err().message.contains("missing address"));
        assert_eq!(ingest_text("r 0x10\nw zzz\n").unwrap_err().line, 2);
        assert_eq!(ingest_text("r 0x10 0x20 0x30\n").unwrap_err().line, 1);
        let err = ingest_text("# nothing\n\n").unwrap_err();
        assert!(err.message.contains("no records"), "{err}");
    }

    #[test]
    fn ingest_auto_detects_and_parses_lackey_dumps() {
        let text = "==1234== Lackey, an example Valgrind tool\n\
                    I  0400d7d4,8\n\
                     L 04f0a828,8\n\
                     S 04f0a7f0,8\n\
                    I  0400d7e0,4\n\
                     M 0421b7f0,4\n\
                    ==1234== exiting\n";
        let records = ingest_text(text).unwrap();
        assert_eq!(
            records,
            vec![
                TraceRecord { addr: 0x04f0_a828, write: false, pc: 0x0400_d7d4 },
                TraceRecord { addr: 0x04f0_a7f0, write: true, pc: 0x0400_d7d4 },
                TraceRecord { addr: 0x0421_b7f0, write: false, pc: 0x0400_d7e0 },
                TraceRecord { addr: 0x0421_b7f0, write: true, pc: 0x0400_d7e0 },
            ]
        );
    }

    #[test]
    fn lackey_detection_needs_both_the_kind_and_the_comma() {
        // Uppercase native kinds without a comma stay native.
        assert_eq!(
            ingest_text("L 0x1000 0x400\n").unwrap(),
            vec![TraceRecord { addr: 0x1000, write: false, pc: 0x400 }]
        );
        // Data records with no preceding fetch carry pc 0.
        assert_eq!(
            ingest_text("S 1000,4\n").unwrap(),
            vec![TraceRecord { addr: 0x1000, write: true, pc: 0 }]
        );
    }

    #[test]
    fn lackey_errors_carry_line_numbers() {
        let err = ingest_text("I 400,4\n L 500,8\n X 600,4\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown lackey access kind"), "{err}");
        let err = ingest_text("I 400,4\n L 500\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("addr,size"), "{err}");
        let err = ingest_text("L zz,4\n").unwrap_err();
        assert!(err.message.contains("not a hex integer"), "{err}");
        let err = ingest_text("L 500,0\n").unwrap_err();
        assert!(err.message.contains("size 0"), "{err}");
        let err = ingest_text("L 500,4 extra\n").unwrap_err();
        assert!(err.message.contains("trailing field"), "{err}");
        let err = ingest_text("I 400,4\nL\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("missing its"), "{err}");
        // A dump of only fetches holds no data records.
        let err = ingest_text("I 400,4\nI 404,4\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("no records"), "{err}");
    }

    #[test]
    fn trace_profiles_validate_and_carry_the_path() {
        let profile = trace_profile("traces/sample.lnt");
        profile.validate().expect("trace profiles are valid");
        assert_eq!(profile.pattern, AccessPattern::Trace);
        assert_eq!(profile.trace_path.as_deref(), Some("traces/sample.lnt"));
        assert_eq!(profile.name, "traces/sample.lnt");
    }
}
