//! The trace instruction format consumed by the core model.

use lnuca_types::Addr;
use serde::{Deserialize, Serialize};

/// The class of a traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Integer ALU operation (1-cycle latency in the core model).
    IntAlu,
    /// Floating-point operation (multi-cycle latency).
    FpAlu,
    /// Data load from `addr`.
    Load,
    /// Data store to `addr`.
    Store,
    /// Conditional branch with the given static identifier and outcome.
    Branch {
        /// Static branch identifier (stands in for the branch PC).
        pc: u64,
        /// Whether the branch is taken.
        taken: bool,
    },
}

impl InstrKind {
    /// Returns `true` for loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, InstrKind::Load)
    }

    /// Returns `true` for stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, InstrKind::Store)
    }

    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for branches.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, InstrKind::Branch { .. })
    }

    /// Returns `true` for floating-point operations.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, InstrKind::FpAlu)
    }
}

/// One traced instruction.
///
/// `dep_distance` expresses register dependencies abstractly: the instruction
/// reads the result of the instruction `dep_distance` positions earlier in
/// the trace (0 means no register dependency). This is how the synthetic
/// traces control the achievable instruction-level parallelism without
/// carrying full register names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Instruction class (and branch outcome for branches).
    pub kind: InstrKind,
    /// Effective address for loads and stores, `None` otherwise.
    pub addr: Option<Addr>,
    /// Distance (in instructions) to the producer of this instruction's
    /// input operand; 0 means the instruction has no in-flight dependency.
    pub dep_distance: u32,
}

impl Instr {
    /// A dependency-free integer ALU instruction (useful in tests).
    #[must_use]
    pub fn int_alu() -> Self {
        Instr {
            kind: InstrKind::IntAlu,
            addr: None,
            dep_distance: 0,
        }
    }

    /// A load from `addr` with no register dependency.
    #[must_use]
    pub fn load(addr: Addr) -> Self {
        Instr {
            kind: InstrKind::Load,
            addr: Some(addr),
            dep_distance: 0,
        }
    }

    /// A store to `addr` with no register dependency.
    #[must_use]
    pub fn store(addr: Addr) -> Self {
        Instr {
            kind: InstrKind::Store,
            addr: Some(addr),
            dep_distance: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(InstrKind::Load.is_load());
        assert!(InstrKind::Load.is_memory());
        assert!(!InstrKind::Load.is_store());
        assert!(InstrKind::Store.is_memory());
        assert!(InstrKind::FpAlu.is_fp());
        assert!(InstrKind::Branch { pc: 3, taken: true }.is_branch());
        assert!(!InstrKind::IntAlu.is_memory());
    }

    #[test]
    fn constructors_fill_fields() {
        let l = Instr::load(Addr(0x40));
        assert_eq!(l.addr, Some(Addr(0x40)));
        assert!(l.kind.is_load());
        let s = Instr::store(Addr(0x80));
        assert!(s.kind.is_store());
        let a = Instr::int_alu();
        assert_eq!(a.addr, None);
        assert_eq!(a.dep_distance, 0);
    }
}
