//! Quickstart: compose hierarchies declaratively, run one synthetic
//! benchmark on the conventional baseline, on the paper's 3-level L-NUCA,
//! and on a shape the paper never built (the same fabric with *nothing*
//! behind it), and print what the fabric did.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The same comparison is one CLI call away — the scenario layer is the
//! file form of exactly this API:
//!
//! ```bash
//! cargo run --release -p lnuca-bench --bin lnuca -- run scenarios/ln3-no-l3.json
//! ```

use lnuca_suite::core::LNucaConfig;
use lnuca_suite::sim::configs;
use lnuca_suite::sim::spec::HierarchySpec;
use lnuca_suite::sim::system::System;
use lnuca_suite::sim::HierarchyKind;
use lnuca_suite::workloads::suites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instructions = 100_000;
    let profile = suites::by_name("int.compress")?;

    println!("workload: {} ({} instructions)\n", profile.name, instructions);

    // The paper's baseline: 32 KB L1 + 256 KB L2 + 8 MB L3 — one point in
    // the composable spec space (root + intermediate L2 + cache backing).
    let baseline = HierarchyKind::Conventional(configs::conventional()).to_spec();

    // The paper's proposal: replace the L2 with a 3-level, 144 KB L-NUCA.
    let lnuca = HierarchySpec::builder()
        .fabric(LNucaConfig::paper(3)?)
        .backing_cache(configs::paper_l3())
        .build()?;

    // Beyond the paper: the same fabric with nothing behind it but DRAM.
    let no_l3 = HierarchySpec::builder().fabric(LNucaConfig::paper(3)?).build()?;

    let base = System::run_spec(&baseline, &profile, instructions, 42)?;
    let ln = System::run_spec(&lnuca, &profile, instructions, 42)?;
    let bare = System::run_spec(&no_l3, &profile, instructions, 42)?;

    for r in [&base, &ln, &bare] {
        println!(
            "{:<16} IPC {:.3}   cycles {:>9}   DRAM fetches {:>7}",
            r.label, r.ipc, r.cycles, r.hierarchy.memory_accesses
        );
    }
    println!(
        "\nLN3 vs baseline — IPC change: {:+.1}%   energy change: {:+.1}%",
        (ln.ipc / base.ipc - 1.0) * 100.0,
        (ln.energy.total_pj() / base.energy.total_pj() - 1.0) * 100.0
    );

    let fabric = ln.hierarchy.lnuca.as_ref().expect("the L-NUCA hierarchy has a fabric");
    println!("\nL-NUCA fabric activity (LN3-144KB):");
    println!("  searches injected        {:>9}", fabric.searches);
    for (i, hits) in fabric.read_hits_per_level.iter().enumerate() {
        println!("  read hits in Le{}         {:>9}", i + 2, hits);
    }
    println!("  global misses            {:>9}", fabric.global_misses);
    println!("  blocks spilled to the L3 {:>9}", fabric.spills);
    println!(
        "  avg/min transport latency {:>8.3}",
        fabric.transport_latency_ratio()
    );
    Ok(())
}
