//! Quickstart: build the paper's 3-level L-NUCA hierarchy, run one synthetic
//! benchmark on it and on the conventional baseline, and print what the
//! fabric did.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::sim::system::System;
use lnuca_suite::workloads::suites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instructions = 100_000;
    let profile = suites::by_name("int.compress").expect("built-in profile exists");

    println!("workload: {} ({} instructions)\n", profile.name, instructions);

    // The paper's baseline: 32 KB L1 + 256 KB L2 + 8 MB L3.
    let baseline = HierarchyKind::Conventional(configs::conventional());
    let base = System::run_workload(&baseline, &profile, instructions, 42)?;

    // The paper's proposal: replace the L2 with a 3-level, 144 KB L-NUCA.
    let lnuca = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3));
    let ln = System::run_workload(&lnuca, &profile, instructions, 42)?;

    println!("{:<12} IPC {:.3}   cycles {:>9}", base.label, base.ipc, base.cycles);
    println!("{:<12} IPC {:.3}   cycles {:>9}", ln.label, ln.ipc, ln.cycles);
    println!(
        "\nIPC change: {:+.1}%   energy change: {:+.1}%",
        (ln.ipc / base.ipc - 1.0) * 100.0,
        (ln.energy.total_pj() / base.energy.total_pj() - 1.0) * 100.0
    );

    let fabric = ln.hierarchy.lnuca.as_ref().expect("the L-NUCA hierarchy has a fabric");
    println!("\nL-NUCA fabric activity:");
    println!("  searches injected        {:>9}", fabric.searches);
    for (i, hits) in fabric.read_hits_per_level.iter().enumerate() {
        println!("  read hits in Le{}         {:>9}", i + 2, hits);
    }
    println!("  global misses            {:>9}", fabric.global_misses);
    println!("  blocks spilled to the L3 {:>9}", fabric.spills);
    println!(
        "  avg/min transport latency {:>8.3}",
        fabric.transport_latency_ratio()
    );
    Ok(())
}
