//! Design-space exploration over the L-NUCA parameters the paper discusses:
//! number of levels, tile size and routing policy. Prints IPC, capacity and
//! estimated area so the trade-off the paper describes (gains saturate
//! around 3–4 levels while area keeps growing) is visible directly.
//!
//! ```bash
//! cargo run --release --example design_space
//! ```

use lnuca_suite::core::{LNucaConfig, LNucaGeometry};
use lnuca_suite::energy::AreaModel;
use lnuca_suite::noc::RoutingPolicy;
use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::sim::report::format_table;
use lnuca_suite::sim::system::System;
use lnuca_suite::types::stats::harmonic_mean;
use lnuca_suite::workloads::suites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instructions = 30_000;
    let mut workloads = suites::spec_int_like();
    workloads.truncate(2);
    let mut fp = suites::spec_fp_like();
    fp.truncate(2);
    workloads.extend(fp);
    let area = AreaModel::paper();

    println!("L-NUCA design space ({} instructions per run, 4 synthetic benchmarks)\n", instructions);

    let mut rows = Vec::new();
    for levels in 2..=5u8 {
        for (routing_name, routing) in [("random", RoutingPolicy::RandomValid), ("dim-order", RoutingPolicy::DimensionOrder)] {
            let mut config = configs::lnuca_hierarchy(levels);
            config.lnuca = LNucaConfig {
                routing,
                ..config.lnuca
            };
            let kind = HierarchyKind::LNucaL3(config);
            let mut ipcs = Vec::new();
            let mut ratio_num = 0u64;
            let mut ratio_den = 0u64;
            for (i, profile) in workloads.iter().enumerate() {
                let r = System::run_workload(&kind, profile, instructions, 11 + i as u64)?;
                ipcs.push(r.ipc);
                if let Some(f) = &r.hierarchy.lnuca {
                    ratio_num += f.transport_latency_sum;
                    ratio_den += f.transport_min_latency_sum;
                }
            }
            let geometry = LNucaGeometry::new(levels)?;
            let capacity_kb = (geometry.capacity_bytes(8 * 1024) + 32 * 1024) / 1024;
            let mm2 = area.lnuca_mm2(32 * 1024, geometry.tile_count(), 8 * 1024);
            rows.push(vec![
                format!("LN{levels}"),
                routing_name.to_owned(),
                format!("{capacity_kb} KB"),
                format!("{:.2} mm2", mm2),
                format!("{:.3}", harmonic_mean(&ipcs).unwrap_or(0.0)),
                format!(
                    "{:.3}",
                    if ratio_den == 0 { 1.0 } else { ratio_num as f64 / ratio_den as f64 }
                ),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["fabric", "routing", "capacity (with L1)", "area", "harmonic-mean IPC", "avg/min transport"],
            &rows
        )
    );
    println!("Expected shape: IPC grows quickly up to LN3 and flattens, while area keeps growing\nroughly linearly in the tile count — the trade-off behind the paper's LN3 recommendation.");
    Ok(())
}
