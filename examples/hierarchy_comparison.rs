//! Compare all four hierarchies of Fig. 1 (conventional, L-NUCA + L3,
//! D-NUCA, L-NUCA + D-NUCA) on a mixed set of synthetic benchmarks: IPC,
//! where requests are serviced, and total energy.
//!
//! ```bash
//! cargo run --release --example hierarchy_comparison
//! ```

use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::sim::report::format_table;
use lnuca_suite::sim::system::System;
use lnuca_suite::types::stats::harmonic_mean;
use lnuca_suite::workloads::suites;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instructions = 50_000;
    let mut workloads = suites::spec_int_like();
    workloads.truncate(3);
    let mut fp = suites::spec_fp_like();
    fp.truncate(3);
    workloads.extend(fp);

    let kinds = vec![
        HierarchyKind::Conventional(configs::conventional()),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)),
    ];

    println!(
        "comparing {} hierarchies on {} synthetic benchmarks ({} instructions each)\n",
        kinds.len(),
        workloads.len(),
        instructions
    );

    let mut rows = Vec::new();
    for kind in &kinds {
        let mut ipcs = Vec::new();
        let mut l1_hit_ratio = 0.0;
        let mut second_level_hits = 0u64;
        let mut memory_accesses = 0u64;
        let mut energy_pj = 0.0;
        for (i, profile) in workloads.iter().enumerate() {
            let r = System::run_workload(kind, profile, instructions, 7 + i as u64)?;
            ipcs.push(r.ipc);
            l1_hit_ratio += 1.0 - r.hierarchy.l1.miss_ratio();
            second_level_hits += r.hierarchy.second_level_read_hits();
            memory_accesses += r.hierarchy.memory_accesses;
            energy_pj += r.energy.total_pj();
        }
        let n = workloads.len() as f64;
        rows.push(vec![
            kind.label(),
            format!("{:.3}", harmonic_mean(&ipcs).unwrap_or(0.0)),
            format!("{:.1}%", l1_hit_ratio / n * 100.0),
            (second_level_hits / workloads.len() as u64).to_string(),
            (memory_accesses / workloads.len() as u64).to_string(),
            format!("{:.2}", energy_pj / n / 1e6),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "configuration",
                "harmonic-mean IPC",
                "L1 hit ratio",
                "2nd-level read hits (avg)",
                "memory fetches (avg)",
                "energy (uJ, avg)"
            ],
            &rows
        )
    );
    println!("The L-NUCA rows should keep IPC at or above their baseline (L2-256KB or DN-4x8)\nwhile shrinking the energy column — the paper's simultaneous win.");
    Ok(())
}
