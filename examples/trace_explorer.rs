//! Inspect the synthetic workloads that stand in for SPEC CPU2006: print the
//! instruction mix, the working-set structure and the resulting cache
//! behaviour of each profile on a stand-alone cache array, so the substitution
//! documented in DESIGN.md can be audited without running the full simulator.
//!
//! ```bash
//! cargo run --release --example trace_explorer
//! ```

use lnuca_suite::mem::{CacheArray, CacheGeometry, ReplacementPolicy};
use lnuca_suite::sim::report::format_table;
use lnuca_suite::workloads::{suites, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sample = 200_000usize;
    println!(
        "synthetic workload profiles ({} sampled instructions per profile)\n",
        sample
    );

    // A 256 KB, 8-way array approximates the baseline L2's reach; a 72 KB
    // fully-associative array approximates LN2's reach (L1 + Le2 tiles).
    let l2_geometry = CacheGeometry::new(256 * 1024, 8, 32)?;
    let ln2_geometry = CacheGeometry::new(64 * 1024, 16, 32)?;

    let mut rows = Vec::new();
    for profile in suites::all() {
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut branches = 0u64;
        let mut l2_array = CacheArray::new(l2_geometry, ReplacementPolicy::Lru);
        let mut ln2_array = CacheArray::new(ln2_geometry, ReplacementPolicy::Lru);
        let mut l2_hits = 0u64;
        let mut ln2_hits = 0u64;
        let mut mem_refs = 0u64;
        for instr in TraceGenerator::new(profile.clone(), 123).take(sample) {
            match instr.kind {
                k if k.is_load() => loads += 1,
                k if k.is_store() => stores += 1,
                k if k.is_branch() => branches += 1,
                _ => {}
            }
            if let Some(addr) = instr.addr {
                mem_refs += 1;
                if l2_array.lookup(addr).is_some() {
                    l2_hits += 1;
                } else {
                    l2_array.fill(addr, false);
                }
                if ln2_array.lookup(addr).is_some() {
                    ln2_hits += 1;
                } else {
                    ln2_array.fill(addr, false);
                }
            }
        }
        let pct = |n: u64, d: u64| format!("{:.1}%", n as f64 / d as f64 * 100.0);
        rows.push(vec![
            profile.name.clone(),
            profile.suite.label().to_owned(),
            pct(loads, sample as u64),
            pct(stores, sample as u64),
            pct(branches, sample as u64),
            format!("{} KB", profile.footprint_bytes() / 1024),
            pct(l2_hits, mem_refs),
            pct(ln2_hits, mem_refs),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "profile",
                "suite",
                "loads",
                "stores",
                "branches",
                "footprint",
                "hits in 256KB",
                "hits in 64KB"
            ],
            &rows
        )
    );
    println!("The gap between the last two columns is the reuse that a small, fast L-NUCA\ncan capture versus what needs the full 256 KB L2 — the paper's target traffic.");
    Ok(())
}
