//! Offline shim for the subset of the
//! [proptest](https://docs.rs/proptest/1) API this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps the property tests running as *randomized* tests:
//! each `proptest!` function draws [`CASES`] deterministic pseudo-random
//! inputs from its strategies and runs the body on each. What it does **not**
//! do is shrink failing inputs or persist failure seeds — a failure report
//! shows the panic from the raw (unshrunk) case. The seed is fixed, so a
//! failure reproduces on every run.
//!
//! Supported surface: `proptest! { #[test] fn f(x in strategy, ..) { .. } }`,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], [`any`],
//! integer/float range strategies, tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], and [`Strategy::boxed`] +
//! [`prop_oneof!`] (uniform choice among same-typed strategies).

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SampleStandard};
use std::ops::{Range, RangeInclusive};

/// Cases drawn per property (the real crate's default is 256).
pub const CASES: u32 = 256;

/// Fixed seed: property tests are deterministic across runs and machines.
pub const SEED: u64 = 0x1C0_FFEE_D00D;

/// A source of values of one type; the shim generates, it never shrinks.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors the real crate's
    /// `Strategy::prop_map`; no shrinking, like everything in this shim).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy so differently-typed strategies over the
    /// same value type can be combined (mirrors the real crate's
    /// `Strategy::boxed`; used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut SmallRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (the expansion of
/// [`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

/// Builds a [`OneOf`] from boxed strategies. Prefer the [`prop_oneof!`]
/// macro, which boxes its arguments for you.
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of: empty choice list");
    OneOf { choices }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let index = rng.gen_range(0..self.choices.len());
        self.choices[index].generate(rng)
    }
}

/// Shim of `proptest::prop_oneof!`: draws uniformly among the listed
/// same-value-typed strategies (the real crate's per-arm weights are not
/// supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform draw over the whole domain of `T`.
pub fn any<T: SampleStandard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: SampleStandard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// A strategy that always yields a clone of one value.
pub struct JustStrategy<T: Clone>(pub T);

/// Mirrors `proptest::strategy::Just`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value lists (only `select`).

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Mirrors `proptest::sample::select`: uniform over `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select: empty choice list");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Per-property bookkeeping used by the expansion of [`proptest!`](crate::proptest).

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drives one property: holds the RNG and the case budget.
    pub struct TestRunner {
        /// Deterministically seeded generator shared by all strategies.
        pub rng: SmallRng,
        /// Number of cases to draw.
        pub cases: u32,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner {
                rng: SmallRng::seed_from_u64(crate::SEED),
                cases: crate::CASES,
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{any, Just, BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Shim of `proptest::proptest!`: each listed function becomes a `#[test]`
/// that redraws its arguments [`CASES`] times and runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::default();
            for _case in 0..runner.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner.rng);)+
                $body
            }
        }
    )+};
}

/// Shim of `prop_assert!` — panics instead of returning a `TestCaseError`,
/// which in a non-shrinking runner amounts to the same failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 3u32..10,
            pair in (0usize..12, 0usize..12),
            v in collection::vec(0u64..0x1000, 0..100),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 12 && pair.1 < 12);
            prop_assert!(v.len() < 100);
            prop_assert!(v.iter().all(|&e| e < 0x1000));
        }

        #[test]
        fn any_and_inclusive_ranges_work(b in any::<bool>(), lvl in 2u8..=6) {
            prop_assert!(b || !b);
            prop_assert!((2..=6).contains(&lvl));
        }

        #[test]
        fn prop_oneof_draws_from_every_arm(
            draws in collection::vec(
                prop_oneof![
                    0u64..10,
                    (100u64..110).prop_map(|v| v + 1),
                    Just(42u64),
                ],
                64..65,
            ),
        ) {
            prop_assert!(draws
                .iter()
                .all(|&v| v < 10 || (101..111).contains(&v) || v == 42));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::Strategy;
        let mut a = crate::test_runner::TestRunner::default();
        let mut b = crate::test_runner::TestRunner::default();
        let strat = 0u64..u64::MAX;
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a.rng), strat.generate(&mut b.rng));
        }
    }
}
