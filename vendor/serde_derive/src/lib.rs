//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds in an offline container, so the real `serde_derive`
//! cannot be fetched. The simulator only *annotates* its config and stats
//! types with the derives (no code path serializes anything yet), so the
//! macros here validate nothing and emit nothing. Swapping the `serde`
//! workspace dependency back to the crates.io version is all that is needed
//! to restore real implementations.

use proc_macro::TokenStream;

/// Accepts the input unconditionally and emits no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input unconditionally and emits no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
