//! A small, dependency-free JSON document model with a strict parser and a
//! deterministic pretty-printer.
//!
//! The workspace builds offline, so the derive macros of this shim are
//! no-ops and cannot generate per-type (de)serializers. What the scenario
//! layer of `lnuca-sim` and the `lnuca` CLI need instead is a *document*
//! API: parse a JSON text into a [`Value`] tree, walk it explicitly
//! (rejecting unknown fields along the way), and write a [`Value`] tree
//! back out in a stable, diff-friendly format. `baseline_delta` used to
//! scan JSON with ad-hoc string searches; this module is the real reader.
//!
//! Design notes:
//!
//! * Object member order is **preserved** (a `Vec` of pairs, not a map), so
//!   writing a parsed document back out reproduces the field order — which
//!   keeps committed scenario files stable under round trips.
//! * Integers are kept exact: a number literal without fraction or exponent
//!   parses to [`Value::UInt`]/[`Value::Int`] (full 64-bit range), anything
//!   else to [`Value::Float`]. Seeds and cycle counts survive unharmed.
//! * The parser is strict JSON (RFC 8259): no comments, no trailing commas,
//!   no NaN/Infinity. Errors carry line and column.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no fraction/exponent).
    UInt(u64),
    /// A negative integer literal (no fraction/exponent).
    Int(i64),
    /// Any other number literal.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with member order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a member of an object by key (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline (the stable on-disk format of the scenario
    /// files and reports).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&write_f64(*v)),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON forbids NaN/Infinity; clamp them to `null`-adjacent zero rather
/// than emitting an invalid document.
fn write_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot ("3"); keep the float
        // type observable in the document so a round trip stays a Float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_owned()
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the 1-based line and column of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (exactly one top-level value).
///
/// # Errors
///
/// Returns a [`ParseError`] on the first syntax violation, including
/// trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {:?}, found {}",
                byte as char,
                self.peek().map_or("end of input".to_owned(), |b| format!("{:?}", b as char))
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate object key {key:?}")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let code = if (0xD800..0xDC00).contains(&first) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            // parse_hex4 leaves pos past the digits; the
                            // shared advance below must not run again.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input came from a &str");
                    let c = s.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            // Out-of-range integers degrade to floats rather than failing.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5e3").unwrap(), Value::Float(1500.0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX),
            "u64 range survives exactly"
        );
        assert_eq!(parse("\"a\\nb\\u00e9\"").unwrap(), Value::String("a\nbé".to_owned()));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let v = parse(r#"{"b": [1, {"x": null}], "a": "s"}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents_with_positions() {
        for (text, needle) in [
            ("{", "expected"),
            ("[1,]", "unexpected"),
            ("{\"a\": 1,}", "expected"),
            ("nul", "expected `null`"),
            ("1 2", "trailing"),
            ("\"\\q\"", "escape"),
            ("{\"a\": 1, \"a\": 2}", "duplicate"),
            ("01", "trailing"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?}: expected {needle:?} in {:?}",
                err.message
            );
            assert!(err.line >= 1 && err.column >= 1);
        }
    }

    #[test]
    fn error_positions_track_lines() {
        let err = parse("{\n  \"a\": bad\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 8, "column {}", err.column);
    }

    #[test]
    fn round_trips_through_the_pretty_printer() {
        let text = r#"{"name": "x", "n": 3, "neg": -2, "f": 1.25, "flag": true, "none": null, "list": [1, 2], "empty": [], "obj": {"k": "v"}}"#;
        let v = parse(text).unwrap();
        let pretty = v.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), v, "parse(pretty(v)) == v");
        // Stable: pretty-printing is idempotent.
        assert_eq!(parse(&pretty).unwrap().to_pretty(), pretty);
    }

    #[test]
    fn floats_stay_floats_across_round_trips() {
        let v = parse("[1.0, 2.5]").unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains("1.0"), "{pretty}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let v = Value::String("quote \" slash \\ tab \t control \u{1}".to_owned());
        let pretty = v.to_pretty();
        assert_eq!(parse(pretty.trim()).unwrap(), v);
    }
}
