//! Offline shim for the subset of [serde](https://serde.rs) this workspace
//! uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. The simulator's config and statistics types derive
//! `Serialize`/`Deserialize` for downstream tooling, but nothing in-tree
//! serializes yet, so this shim only needs to make the `use` paths and
//! derive attributes resolve:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits (never used as bounds
//!   in-tree), and
//! * re-exported no-op derive macros from the sibling `serde_derive` shim
//!   (behind the `derive` feature, mirroring the real crate layout).
//!
//! To switch to the real serde, point the `serde` entry in the workspace
//! `[workspace.dependencies]` table back at crates.io; no source changes are
//! required.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
