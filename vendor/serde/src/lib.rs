//! Offline shim for the subset of [serde](https://serde.rs) this workspace
//! uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. The simulator's config and statistics types derive
//! `Serialize`/`Deserialize` for downstream tooling; the shim makes the
//! `use` paths and derive attributes resolve:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits (never used as bounds
//!   in-tree),
//! * re-exported no-op derive macros from the sibling `serde_derive` shim
//!   (behind the `derive` feature, mirroring the real crate layout), and
//! * the [`json`] document module — a strict JSON parser and deterministic
//!   pretty-printer over an order-preserving [`json::Value`] tree. The
//!   scenario files and `lnuca-report/v1` documents of `lnuca-sim`'s
//!   declarative experiment API go through it (explicit `to_value` /
//!   `from_value` conversions on each type, with unknown-field rejection),
//!   since the no-op derives cannot generate per-type code.
//!
//! To switch to the real serde, point the `serde` entry in the workspace
//! `[workspace.dependencies]` table back at crates.io and move the `json`
//! users to `serde_json`; the marker-trait derives need no source changes.

pub mod json;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
