//! Offline shim for the subset of the
//! [criterion](https://docs.rs/criterion/0.5) benchmarking API this
//! workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps the `benches/` targets compiling and gives
//! `cargo bench` a useful (if statistically unsophisticated) output: each
//! benchmark is warmed up, run for a fixed number of timed samples, and the
//! mean, minimum and maximum per-iteration wall-clock times are printed.
//! There are no HTML reports, no outlier analysis and no saved baselines;
//! swap the workspace `criterion` dependency back to crates.io to get them.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f`, passing `input` through to the routine.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush here).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form, used when the group name already names the code.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall-clock time.
    ///
    /// The first call doubles as warm-up and calibration: fast routines are
    /// batched so one sample spans at least ~1 ms, keeping `Instant`
    /// overhead and timer granularity out of the reported numbers.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let calibration = Instant::now();
        std::hint::black_box(routine());
        let once = calibration.elapsed();
        let iters = if once < Duration::from_micros(100) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u32
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / iters);
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples — routine never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!("{label:<48} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
}

/// Collects benchmark functions into one runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group in order, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
