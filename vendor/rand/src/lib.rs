//! Offline shim for the subset of the [rand](https://docs.rs/rand/0.8) 0.8
//! API this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. The simulator only needs a deterministic, seedable, decent-quality
//! generator — every use site is `SmallRng::seed_from_u64(..)` followed by
//! [`Rng::gen`], [`Rng::gen_range`] or [`Rng::gen_bool`] — so this shim
//! provides exactly that surface:
//!
//! * [`rngs::SmallRng`]: xoshiro256++ (the same algorithm real rand 0.8 uses
//!   for `SmallRng` on 64-bit targets), seeded through SplitMix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for `bool`/ints/floats, [`Rng::gen_range`] over
//!   half-open and inclusive ranges of ints and floats, and
//!   [`Rng::gen_bool`].
//!
//! Streams are deterministic for a given seed but are **not** bit-identical
//! to real rand's (distribution plumbing differs); in-tree tests assert
//! statistical shape, not exact draws, so this does not matter here.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!((5..10).contains(&rng.gen_range(5..10)));
//! ```

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (uniform over the domain for ints, uniform in `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

// Lets `R: Rng + ?Sized` call sites re-borrow, exactly as real rand does.
impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> mantissa precision, exactly as real rand does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce.
pub trait SampleStandard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_int_span(self.start as i128, self.end as i128 - 1, rng) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                sample_int_span(start as i128, end as i128, rng) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[low, high]` (inclusive; both fit in i128 for every
/// implemented width).
fn sample_int_span<R: RngCore + ?Sized>(low: i128, high: i128, rng: &mut R) -> i128 {
    let span = (high - low) as u128 + 1;
    if span == 0 || span > u64::MAX as u128 {
        // Covers the full 64-bit domain (or more): one raw draw is exact.
        return low + rng.next_u64() as i128;
    }
    // Multiply-shift (Lemire) keeps bias below 2^-64 per draw, more than
    // enough for simulation workloads.
    let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
    low + hi
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Narrowing to f32 or rounding in the multiply/add can land
                // exactly on `end`; the API contract is half-open.
                if v < self.end {
                    v
                } else {
                    self.end.next_down()
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators (only [`SmallRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm real rand 0.8 uses for `SmallRng` on
    /// 64-bit platforms: fast, small, and far better distributed than an LCG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
