//! Umbrella crate for the Light NUCA (DATE 2009) reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that the
//! runnable examples under `examples/` and the integration tests under
//! `tests/` can use a single import root. Library users normally depend on
//! the individual crates (`lnuca-core`, `lnuca-sim`, ...) directly.
//!
//! # Example
//!
//! ```
//! use lnuca_suite::sim::configs;
//!
//! let cfg = configs::lnuca_hierarchy(3);
//! assert_eq!(cfg.lnuca.levels, 3);
//! ```

pub use lnuca_coherence as coherence;
pub use lnuca_core as core;
pub use lnuca_cpu as cpu;
pub use lnuca_dnuca as dnuca;
pub use lnuca_energy as energy;
pub use lnuca_mem as mem;
pub use lnuca_noc as noc;
pub use lnuca_sim as sim;
pub use lnuca_types as types;
pub use lnuca_verify as verify;
pub use lnuca_workloads as workloads;
