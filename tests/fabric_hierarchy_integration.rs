//! Integration tests spanning the core fabric, the memory substrates and the
//! full-system hierarchies: the end-to-end behaviours the paper's evaluation
//! relies on, checked on small but complete simulations.

use lnuca_suite::core::{LNuca, LNucaConfig, LNucaGeometry};
use lnuca_suite::cpu::{CoreConfig, DataMemory, FixedLatencyMemory, OooCore};
use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::sim::system::System;
use lnuca_suite::types::{Addr, Cycle, ReqId};
use lnuca_suite::workloads::{suites, TraceGenerator, WorkloadProfile};

/// The paper's three evaluated fabric sizes have the published capacities.
#[test]
fn lnuca_capacities_match_figure_1() {
    let l1 = 32 * 1024;
    for (levels, expected_kb) in [(2u8, 72u64), (3, 144), (4, 248)] {
        let geometry = LNucaGeometry::new(levels).expect("paper sizes are valid");
        assert_eq!((geometry.capacity_bytes(8 * 1024) + l1) / 1024, expected_kb);
    }
}

/// A block that leaves the root tile is found again by the fabric and comes
/// back faster than the L3 would deliver it — the core victim-cache claim.
#[test]
fn fabric_recovers_victims_faster_than_the_l3_would() {
    let mut fabric = LNuca::new(LNucaConfig::paper(3).expect("valid")).expect("valid");
    let victim = Addr(0xABC0);
    fabric.evict_from_root(victim, false);
    for c in 0..6 {
        fabric.tick(Cycle(c));
    }
    assert!(fabric.inject_search(victim, ReqId(1), false, Cycle(6)));
    let mut arrival = None;
    for c in 6..30 {
        fabric.tick(Cycle(c));
        if let Some(a) = fabric.pop_arrivals(Cycle(c)).into_iter().next() {
            arrival = Some(a);
            break;
        }
    }
    let arrival = arrival.expect("the evicted block must be found");
    let latency = arrival.available_at.since(Cycle(6));
    let l3_latency = configs::paper_l3().completion_cycles;
    assert!(
        latency < l3_latency,
        "fabric hit took {latency} cycles, not faster than the {l3_latency}-cycle L3"
    );
}

/// Content exclusion holds across a full-system run: after the simulation no
/// block is resident in more than one place of the L1 + fabric pair.
#[test]
fn full_system_run_preserves_exclusion_invariants() {
    use lnuca_suite::sim::hierarchy::LNucaHierarchy;
    use lnuca_suite::cpu::DataMemory as _;

    let config = configs::lnuca_hierarchy(2);
    let mut hierarchy = LNucaHierarchy::with_l3(&config).expect("valid config");
    let profile = suites::spec_int_like()[1].clone();
    let trace = TraceGenerator::new(profile, 5).take(3_000);
    let mut core = OooCore::new(CoreConfig::paper(), trace).expect("valid core");
    let mut now = Cycle(0);
    while !core.is_finished() && now.0 < 1_000_000 {
        hierarchy.tick(now);
        core.tick(now, &mut hierarchy);
        now = now.next();
    }
    assert!(core.is_finished());
    // The fabric never holds more blocks than its capacity.
    let fabric = hierarchy.fabric();
    assert!(
        fabric.resident_blocks() as u64
            <= fabric.capacity_bytes() / u64::from(fabric.config().block_size as u64),
        "fabric holds more blocks than it has room for"
    );
}

/// The four hierarchies of Fig. 1 produce comparable, reproducible runs with
/// the attribution fields each experiment needs.
#[test]
fn all_four_hierarchies_run_the_same_workload() {
    let profile = WorkloadProfile::default();
    let kinds = [
        HierarchyKind::Conventional(configs::conventional()),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)),
    ];
    for kind in kinds {
        let result = System::run_workload(&kind, &profile, 4_000, 3).expect("valid config");
        assert_eq!(result.instructions, 4_000, "{} did not finish", result.label);
        assert!(result.ipc > 0.05, "{} IPC {}", result.label, result.ipc);
        assert!(result.energy.total_pj() > 0.0);
        match kind {
            HierarchyKind::Conventional(_) => assert!(result.hierarchy.l2.is_some()),
            HierarchyKind::LNucaL3(_) => {
                assert!(result.hierarchy.lnuca.is_some());
                assert!(result.hierarchy.l3.is_some());
            }
            HierarchyKind::DNuca(_) => assert!(result.hierarchy.dnuca.is_some()),
            HierarchyKind::LNucaDNuca(_) => {
                assert!(result.hierarchy.lnuca.is_some());
                assert!(result.hierarchy.dnuca.is_some());
            }
        }
    }
}

/// The L-NUCA hierarchy services a visible share of its requests from the
/// tiles, and closer levels service at least as many reads as farther ones
/// (the Table III monotonicity).
#[test]
fn tile_hit_distribution_is_monotone_in_level() {
    let profile = suites::spec_fp_like()[0].clone();
    let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(4));
    let result = System::run_workload(&kind, &profile, 30_000, 11).expect("valid config");
    let fabric = result.hierarchy.lnuca.expect("fabric stats present");
    assert!(fabric.read_hits() > 100, "only {} fabric read hits", fabric.read_hits());
    assert!(
        fabric.read_hits_in_level(2) >= fabric.read_hits_in_level(3),
        "Le2 ({}) should service at least as many reads as Le3 ({})",
        fabric.read_hits_in_level(2),
        fabric.read_hits_in_level(3)
    );
    assert!(
        fabric.read_hits_in_level(3) >= fabric.read_hits_in_level(4),
        "Le3 should service at least as many reads as Le4"
    );
    // Near-contention-free transport, as in Table III.
    assert!(fabric.transport_latency_ratio() < 1.10);
}

/// The core model alone (perfect memory) reaches a much higher IPC than the
/// same trace against a realistic hierarchy — i.e. the hierarchy, not the
/// core, is the bottleneck being studied.
#[test]
fn memory_hierarchy_is_the_bottleneck() {
    let profile = suites::spec_int_like()[0].clone();
    let trace: Vec<_> = TraceGenerator::new(profile.clone(), 1).take(10_000).collect();

    let mut ideal_core = OooCore::new(CoreConfig::paper(), trace.into_iter()).expect("valid");
    let mut ideal_mem = FixedLatencyMemory::new(1);
    let mut now = Cycle(0);
    while !ideal_core.is_finished() && now.0 < 1_000_000 {
        ideal_mem.tick(now);
        ideal_core.tick(now, &mut ideal_mem);
        now = now.next();
    }
    let ideal_ipc = ideal_core.stats().ipc(now);

    let kind = HierarchyKind::Conventional(configs::conventional());
    let real = System::run_workload(&kind, &profile, 10_000, 1).expect("valid config");
    assert!(
        ideal_ipc > real.ipc,
        "ideal-memory IPC {ideal_ipc} should exceed realistic-hierarchy IPC {}",
        real.ipc
    );
}

/// Identical seeds give identical results across the whole stack (trace
/// generation, routing randomness, replacement) — every experiment in the
/// repository is reproducible.
#[test]
fn end_to_end_determinism() {
    let kind = HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(3));
    let profile = suites::spec_fp_like()[2].clone();
    let a = System::run_workload(&kind, &profile, 6_000, 77).expect("valid config");
    let b = System::run_workload(&kind, &profile, 6_000, 77).expect("valid config");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.hierarchy.lnuca.as_ref().map(|s| s.read_hits()), b.hierarchy.lnuca.as_ref().map(|s| s.read_hits()));
    assert_eq!(a.hierarchy.memory_accesses, b.hierarchy.memory_accesses);
}
