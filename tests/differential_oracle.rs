//! Top-level smoke of the differential oracle: one configuration per
//! hierarchy family, one adversarial and one paper workload, through the
//! umbrella crate. The exhaustive matrix (4 kinds × 2 engines × 26
//! profiles × 3 seeds) lives in `crates/verify/tests/differential.rs`.

use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::verify::harness::run_differential_both_engines;
use lnuca_suite::workloads::suites;

#[test]
fn every_hierarchy_family_survives_the_oracle() {
    let kinds = [
        HierarchyKind::Conventional(configs::conventional()),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)),
    ];
    for kind in &kinds {
        for name in ["int.compress", "adv.phase_mix"] {
            let profile = suites::by_name(name).expect("shipped profile");
            let report = run_differential_both_engines(kind, &profile, 2_000, 1)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(report.accesses > 0);
            assert!(report.events as u64 >= report.accesses);
        }
    }
}

#[test]
fn the_oracle_counts_what_the_run_did() {
    let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2));
    let profile = suites::by_name("adv.gups").expect("shipped profile");
    let report = run_differential_both_engines(&kind, &profile, 3_000, 9)
        .unwrap_or_else(|e| panic!("{e}"));
    // GUPS over a >L3-sized table: plenty of DRAM traffic and write drains.
    assert!(report.memory_accesses > 100, "memory accesses {}", report.memory_accesses);
    assert!(report.write_drains > 50, "write drains {}", report.write_drains);
}
