//! Pins the event-horizon contract end to end: for every hierarchy kind and
//! several seeds, [`Engine::EventHorizon`] — which jumps the clock to the
//! minimum `next_event` horizon instead of single-stepping — produces a
//! `RunResult` **bit-identical** to [`Engine::CycleStep`]: same final cycle
//! count, same IPC bits, same core/hierarchy counters (including the lazily
//! accumulated stall-cycle windows), same energy ledger.
//!
//! A failure here means some component under-reported its horizon (claimed
//! quiescence while a tick would still have changed state) — the one
//! invariant DESIGN.md §10 forbids breaking.

use lnuca_suite::sim::configs::{self, HierarchyKind};
use lnuca_suite::sim::system::{Engine, System};
use lnuca_suite::workloads::suites;

const INSTRUCTIONS: u64 = 5_000;
const SEEDS: [u64; 3] = [1, 2, 3];

fn all_kinds() -> Vec<HierarchyKind> {
    vec![
        HierarchyKind::Conventional(configs::conventional()),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)),
    ]
}

#[test]
fn event_horizon_is_bit_identical_to_cycle_stepping_everywhere() {
    let profiles = [&suites::spec_int_like()[0], &suites::spec_fp_like()[0]];
    for kind in all_kinds() {
        for &seed in &SEEDS {
            for profile in profiles {
                let stepped = System::run_workload_with(
                    Engine::CycleStep,
                    &kind,
                    profile,
                    INSTRUCTIONS,
                    seed,
                )
                .expect("valid configuration");
                let jumped = System::run_workload_with(
                    Engine::EventHorizon,
                    &kind,
                    profile,
                    INSTRUCTIONS,
                    seed,
                )
                .expect("valid configuration");
                // Field-by-field first so a mismatch names the field…
                assert_eq!(
                    stepped.cycles, jumped.cycles,
                    "{} on {} seed {seed}: cycle counts diverge",
                    kind.label(),
                    profile.name
                );
                assert_eq!(
                    stepped.ipc.to_bits(),
                    jumped.ipc.to_bits(),
                    "{} on {} seed {seed}: IPC diverges",
                    kind.label(),
                    profile.name
                );
                assert_eq!(
                    stepped.core, jumped.core,
                    "{} on {} seed {seed}: core counters diverge",
                    kind.label(),
                    profile.name
                );
                assert_eq!(
                    stepped.hierarchy, jumped.hierarchy,
                    "{} on {} seed {seed}: hierarchy counters diverge",
                    kind.label(),
                    profile.name
                );
                assert_eq!(
                    stepped.energy, jumped.energy,
                    "{} on {} seed {seed}: energy ledgers diverge",
                    kind.label(),
                    profile.name
                );
                // …then the whole struct, covering any future field.
                assert_eq!(stepped, jumped);
            }
        }
    }
}

#[test]
fn the_default_engine_is_event_horizon() {
    // `run_workload` (the path every experiment takes) must match an
    // explicit event-horizon run bit for bit.
    let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2));
    let profile = &suites::spec_int_like()[1];
    let default_run = System::run_workload(&kind, profile, 3_000, 7).unwrap();
    let explicit = System::run_workload_with(Engine::EventHorizon, &kind, profile, 3_000, 7).unwrap();
    assert_eq!(default_run, explicit);
}
