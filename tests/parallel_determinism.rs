//! Pins the contract of the parallel experiment engine: a `threads = 4`
//! [`Study`] is **result-for-result identical** to a `threads = 1` run with
//! the same options — same `RunResult`s (IPC, hit counters, energy events)
//! in the same order, and therefore byte-identical summary tables. The
//! workers only change when each run happens, never what it computes.

use lnuca_suite::sim::experiments::{ExperimentOptions, ExperimentPlan, Study};

fn reduced_options() -> ExperimentOptions {
    ExperimentOptions::builder()
        .instructions(8_000)
        .seed(1)
        .benchmarks_per_suite(Some(2))
        .lnuca_levels(vec![2, 3])
        .build()
}

fn assert_studies_identical(sequential: &Study, parallel: &Study) {
    assert_eq!(sequential.configs, parallel.configs);
    assert_eq!(sequential.baseline, parallel.baseline);
    assert_eq!(sequential.results.len(), parallel.results.len());
    for (seq, par) in sequential.results.iter().zip(&parallel.results) {
        assert_eq!(seq.label, par.label);
        assert_eq!(seq.workload, par.workload);
        assert_eq!(seq.suite, par.suite);
        assert_eq!(seq.instructions, par.instructions);
        assert_eq!(seq.cycles, par.cycles, "{} on {}", seq.label, seq.workload);
        assert_eq!(
            seq.ipc.to_bits(),
            par.ipc.to_bits(),
            "{} on {}: IPC must match bit-exactly",
            seq.label,
            seq.workload
        );
        assert_eq!(seq.core, par.core, "{} on {}", seq.label, seq.workload);
        assert_eq!(seq.hierarchy, par.hierarchy, "{} on {}", seq.label, seq.workload);
        assert_eq!(seq.energy, par.energy, "{} on {}", seq.label, seq.workload);
    }
    // The derived summaries follow, but check them anyway: they are what the
    // printed tables are built from.
    assert_eq!(sequential.ipc_summary(), parallel.ipc_summary());
    assert_eq!(sequential.energy_summary(), parallel.energy_summary());
    assert_eq!(sequential.hit_distribution(), parallel.hit_distribution());
}

#[test]
fn four_workers_match_sequential_on_the_conventional_study() {
    let mut opts = reduced_options();
    let sequential =
        Study::run(&ExperimentPlan::paper_conventional(&opts).expect("valid configurations"))
            .expect("valid configurations");
    opts.threads = 4;
    let parallel =
        Study::run(&ExperimentPlan::paper_conventional(&opts).expect("valid configurations"))
            .expect("valid configurations");
    assert_studies_identical(&sequential, &parallel);
    // Perf is recorded for every run in both modes (values are host noise
    // and deliberately excluded from the identity above).
    assert_eq!(parallel.perf.len(), parallel.results.len());
    assert!(parallel.perf.iter().all(|p| p.cycles > 0));
}

#[test]
fn four_workers_match_sequential_on_the_dnuca_study() {
    let mut opts = reduced_options();
    opts.instructions = 5_000;
    opts.lnuca_levels = vec![2];
    opts.benchmarks_per_suite = Some(1);
    let sequential = Study::run(&ExperimentPlan::paper_dnuca(&opts).expect("valid configurations"))
        .expect("valid configurations");
    opts.threads = 4;
    let parallel = Study::run(&ExperimentPlan::paper_dnuca(&opts).expect("valid configurations"))
        .expect("valid configurations");
    assert_studies_identical(&sequential, &parallel);
}
