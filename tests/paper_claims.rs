//! Integration tests that pin the qualitative claims of the paper's
//! evaluation (the "expected result shape" list in DESIGN.md §7) on reduced
//! but complete experiment runs. These are the repository's regression net:
//! if a change to any substrate breaks one of the paper's directional
//! results, a test here fails.

use lnuca_suite::energy::AreaModel;
use lnuca_suite::sim::experiments::{area_table, ExperimentOptions, ExperimentPlan, Study};
use lnuca_suite::workloads::Suite;

fn reduced_options() -> ExperimentOptions {
    ExperimentOptions::builder()
        .instructions(12_000)
        .seed(1)
        .benchmarks_per_suite(Some(2))
        .lnuca_levels(vec![2, 3])
        .build()
}

/// The single-entry-point form of the old `Study::conventional`.
fn conventional_study(opts: &ExperimentOptions) -> Study {
    let plan = ExperimentPlan::paper_conventional(opts).expect("valid configurations");
    Study::run(&plan).expect("valid configurations")
}

/// Table II: LN3 needs less area than the 256 KB L2 baseline, LN4 more, and
/// the network overhead stays below a quarter of the fabric area.
#[test]
fn area_claims_hold() {
    let rows = area_table();
    let baseline = rows.iter().find(|r| r.label == "L2-256KB").expect("baseline row");
    let ln3 = rows.iter().find(|r| r.label == "LN3-144KB").expect("LN3 row");
    let ln4 = rows.iter().find(|r| r.label == "LN4-248KB").expect("LN4 row");
    assert!(ln3.model_mm2 < baseline.model_mm2);
    assert!(ln4.model_mm2 > baseline.model_mm2);
    for row in &rows {
        assert!(row.model_network_pct < 25.0);
        if let Some(paper) = row.paper_mm2 {
            let err = (row.model_mm2 - paper).abs() / paper;
            assert!(err < 0.2, "{}: model {:.2} vs paper {:.2}", row.label, row.model_mm2, paper);
        }
    }
    // D-NUCA: adding an LN2 is a small relative area increase (paper: 1.2%).
    let model = AreaModel::paper();
    let dnuca = model.dnuca_mm2(32, 256 * 1024);
    let ln2_tiles = model.lnuca_mm2(32 * 1024, 5, 8 * 1024) - model.l1_mm2(32 * 1024);
    assert!(ln2_tiles / dnuca < 0.05);
}

/// Table III shape: the per-level hit distribution decreases outward, the
/// FP suite spreads more of its reuse into the outer levels than the INT
/// suite, and the transport network stays essentially contention-free.
#[test]
fn hit_distribution_claims_hold() {
    let study = conventional_study(&reduced_options());
    let rows = study.hit_distribution();
    assert!(!rows.is_empty());
    for row in &rows {
        // Monotone decrease from Le2 outward.
        for pair in row.level_percent.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-9,
                "{} {:?}: level percentages must not increase outward: {:?}",
                row.label,
                row.suite,
                row.level_percent
            );
        }
        // Near-contention-free transport (paper: below 1.015; we allow a
        // small margin for the reduced runs).
        assert!(
            row.avg_to_min_transport < 1.05,
            "{} {:?}: transport ratio {}",
            row.label,
            row.suite,
            row.avg_to_min_transport
        );
        assert!(row.all_levels_percent > 10.0, "the fabric must capture a visible share");
    }
    // The 3-level fabric captures at least as much as the 2-level one.
    let total_for = |label_prefix: &str, suite: Suite| {
        rows.iter()
            .find(|r| r.label.starts_with(label_prefix) && r.suite == suite)
            .map(|r| r.all_levels_percent)
            .expect("row present")
    };
    assert!(total_for("LN3", Suite::Integer) >= total_for("LN2", Suite::Integer) - 1e-9);
    assert!(total_for("LN3", Suite::FloatingPoint) >= total_for("LN2", Suite::FloatingPoint) - 1e-9);
}

/// Energy shape of Fig. 4(b): static L3 energy dominates every configuration,
/// and the tiles of an L-NUCA leak less than the L2 they replace.
#[test]
fn energy_breakdown_claims_hold() {
    let study = conventional_study(&reduced_options());
    let rows = study.energy_summary();
    let baseline = &rows[0];
    assert!(baseline.static_last > baseline.dynamic);
    assert!(baseline.static_last > baseline.static_second);
    for row in &rows {
        assert!(row.static_last > 0.5, "{}: the L3 leakage dominates the bar", row.label);
        if row.label.starts_with("LN2") || row.label.starts_with("LN3") {
            assert!(
                row.static_second < baseline.static_second,
                "{}: tiles must leak less than the 256 KB L2",
                row.label
            );
        }
    }
}

/// D-NUCA study direction (Fig. 5(a)): adding an L-NUCA in front of the
/// D-NUCA does not hurt either suite on the reduced runs.
#[test]
fn lnuca_plus_dnuca_does_not_regress() {
    let opts = ExperimentOptions::builder()
        .instructions(12_000)
        .seed(3)
        .benchmarks_per_suite(Some(2))
        .lnuca_levels(vec![2])
        .build();
    let plan = ExperimentPlan::paper_dnuca(&opts).expect("valid configurations");
    let study = Study::run(&plan).expect("valid configurations");
    let ipc = study.ipc_summary();
    let baseline = &ipc[0];
    let ln2 = &ipc[1];
    assert!(
        ln2.int_ipc >= baseline.int_ipc * 0.97,
        "LN2 + DN-4x8 Integer IPC {} fell well below DN-4x8 {}",
        ln2.int_ipc,
        baseline.int_ipc
    );
    assert!(
        ln2.fp_ipc >= baseline.fp_ipc * 0.97,
        "LN2 + DN-4x8 FP IPC {} fell well below DN-4x8 {}",
        ln2.fp_ipc,
        baseline.fp_ipc
    );
}

/// The IPC summary always reports the baseline first with zero gain, and
/// every configuration yields finite, positive IPC for both suites.
#[test]
fn ipc_summaries_are_well_formed() {
    let study = conventional_study(&reduced_options());
    let rows = study.ipc_summary();
    assert_eq!(rows[0].label, study.baseline);
    assert!(rows[0].int_gain_pct.abs() < 1e-9);
    assert!(rows[0].fp_gain_pct.abs() < 1e-9);
    for row in &rows {
        assert!(row.int_ipc.is_finite() && row.int_ipc > 0.0);
        assert!(row.fp_ipc.is_finite() && row.fp_ipc > 0.0);
    }
}
