//! The batch-equivalence matrix (DESIGN.md §13): every hierarchy kind ×
//! every shipped workload profile (the paper's 22 plus the 7 adversarial
//! classes) × 3 seeds, run through `BatchRunner` at batch sizes
//! {1, 3, 8, full} and pinned bit-identical — `RunResult` and probe event
//! stream — to the sequential engine.
//!
//! The sequential side of each comparison is the full differential oracle
//! (`lnuca_verify::batch::SequentialBaseline`), so a batched run is not
//! merely "same as solo" but "same as a solo run the reference model
//! signed off on". Each hierarchy kind is one test so the quadrants run in
//! parallel; each kind's 87-case baseline is captured once and reused by
//! all four batched passes. `LNUCA_VERIFY_INSTRUCTIONS` scales the per-run
//! budget (default 700 here: the matrix is stepped five times over).

use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::spec::{BackingSpec, HierarchySpec};
use lnuca_sim::system::{Engine, System};
use lnuca_sim::{BatchJob, BatchRunner};
use lnuca_verify::batch::{BatchCase, SequentialBaseline};
use lnuca_workloads::suites;

const SEEDS: [u64; 3] = [1, 2, 3];

/// Batch sizes every kind is checked at; 0 is the full-width batch.
const BATCH_SIZES: [usize; 4] = [1, 3, 8, 0];

fn instructions() -> u64 {
    std::env::var("LNUCA_VERIFY_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(700)
}

fn verify_kind(kind: &HierarchyKind) {
    let spec = kind.to_spec();
    let instructions = instructions();
    let cases: Vec<BatchCase> = suites::extended()
        .into_iter()
        .flat_map(|profile| {
            SEEDS.map(|seed| BatchCase {
                spec: spec.clone(),
                profile: profile.clone(),
                instructions,
                seed,
            })
        })
        .collect();
    let expected = cases.len();
    assert_eq!(expected, 29 * SEEDS.len(), "the shipped profile set is the verify matrix");
    let baseline = match SequentialBaseline::capture(Engine::EventHorizon, cases) {
        Ok(baseline) => baseline,
        Err(e) => panic!("{e}"),
    };
    for batch_size in BATCH_SIZES {
        match baseline.check_batched(batch_size) {
            Ok(report) => assert_eq!(
                report.runs, expected,
                "width {} compared every run",
                report.batch_size
            ),
            Err(e) => panic!("{e}"),
        }
    }
}

#[test]
fn conventional_batches_are_bit_identical() {
    verify_kind(&HierarchyKind::Conventional(configs::conventional()));
}

#[test]
fn lnuca_l3_batches_are_bit_identical() {
    verify_kind(&HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)));
}

#[test]
fn dnuca_batches_are_bit_identical() {
    verify_kind(&HierarchyKind::DNuca(configs::dnuca_hierarchy()));
}

#[test]
fn lnuca_dnuca_batches_are_bit_identical() {
    verify_kind(&HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)));
}

/// Multicore members batch bit-identically too: a mixed batch of CMP
/// shapes (2-core over L3, 4-core private-fabric over D-NUCA, and a
/// single-core control) reproduces each member's solo `RunResult` —
/// per-core rows and coherence counters included — under both engines
/// and at every width.
#[test]
fn cmp_batches_are_bit_identical_under_both_engines() {
    let cmp = |cores: usize, fabric: bool, backing: BackingSpec| {
        let mut builder = HierarchySpec::builder().backing(backing).cores(cores);
        if fabric {
            builder = builder.fabric(lnuca_core::LNucaConfig::paper(2).unwrap());
        }
        builder.build().unwrap()
    };
    let specs = [
        cmp(2, false, BackingSpec::Cache(configs::paper_l3())),
        cmp(4, true, BackingSpec::DNuca(lnuca_dnuca::DNucaConfig::paper())),
        cmp(1, true, BackingSpec::Cache(configs::paper_l3())),
    ];
    let profiles = suites::adversarial();
    let cases: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|i| SEEDS.map(|seed| (i, seed)))
        .collect();
    for engine in [Engine::EventHorizon, Engine::CycleStep] {
        let solo: Vec<_> = cases
            .iter()
            .map(|&(i, seed)| {
                System::run_spec_with(engine, &specs[i], &profiles[i * 2], 400 + 37 * i as u64, seed)
                    .unwrap()
            })
            .collect();
        for batch_size in [1, 2, 0] {
            let jobs: Vec<BatchJob<'_>> = cases
                .iter()
                .map(|&(i, seed)| BatchJob {
                    spec: &specs[i],
                    profile: &profiles[i * 2],
                    instructions: 400 + 37 * i as u64,
                    seed,
                })
                .collect();
            let width = if batch_size == 0 { jobs.len() } else { batch_size };
            let batched: Vec<_> = jobs
                .chunks(width)
                .flat_map(|chunk| BatchRunner::new(engine, chunk).unwrap().run_results())
                .collect();
            assert_eq!(solo, batched, "{engine:?} width {width} diverged from solo CMP runs");
        }
    }
}

/// Mixed-kind batches under both engines: one batch holding all four paper
/// shapes at different budgets must still reproduce each member's solo
/// run, including under the cycle-step engine the matrix above skips.
#[test]
fn mixed_kind_batches_are_bit_identical_under_both_engines() {
    let kinds = [
        HierarchyKind::Conventional(configs::conventional()),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(3)),
    ];
    let profiles = suites::extended();
    for engine in [Engine::EventHorizon, Engine::CycleStep] {
        let cases: Vec<BatchCase> = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| BatchCase {
                spec: kind.to_spec(),
                profile: profiles[i * 5].clone(),
                instructions: instructions() + 137 * i as u64,
                seed: 4 + i as u64,
            })
            .collect();
        let baseline = match SequentialBaseline::capture(engine, cases) {
            Ok(baseline) => baseline,
            Err(e) => panic!("{e}"),
        };
        for batch_size in [2, 0] {
            if let Err(e) = baseline.check_batched(batch_size) {
                panic!("{e}");
            }
        }
    }
}
