//! Golden pins of the scenario redesign:
//!
//! 1. the committed `scenarios/*.json` files are byte-for-byte the
//!    canonical serializations of the built-in registry (schema drift in
//!    either place fails here before it fails in CI),
//! 2. running the six paper configurations through the scenario files and
//!    `Study::run` produces `RunResult`s **bit-identical** to the
//!    programmatic paper plans (`ExperimentPlan::paper_conventional` /
//!    `ExperimentPlan::paper_dnuca`),
//! 3. a non-paper hierarchy loaded from a scenario file runs end to end.
//!
//! (The differential-oracle coverage of the non-paper shapes lives in
//! `crates/verify/tests/custom_shapes.rs`.)

use lnuca_suite::sim::experiments::{ExperimentOptions, ExperimentPlan, Study};
use lnuca_suite::sim::scenario::{self, Scenario};
use std::path::PathBuf;

fn scenario_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(format!("{name}.json"))
}

fn load(name: &str) -> Scenario {
    let path = scenario_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Small options for the equivalence runs: every configuration of both
/// studies, one benchmark per suite.
fn reduced_options() -> ExperimentOptions {
    ExperimentOptions::builder()
        .instructions(3_000)
        .seed(5)
        .benchmarks_per_suite(Some(1))
        .lnuca_levels(vec![2, 3, 4])
        .build()
}

#[test]
fn committed_scenario_files_are_the_canonical_builtins() {
    for name in scenario::builtin_names() {
        let builtin = scenario::builtin(name).expect("registry resolves its own names");
        let committed = load(name);
        assert_eq!(
            committed, builtin,
            "{name}: scenarios/{name}.json drifted from the built-in \
             (regenerate with `lnuca export {name}`)"
        );
        let canonical = builtin.to_json();
        let on_disk = std::fs::read_to_string(scenario_path(name)).expect("read back");
        assert_eq!(
            on_disk, canonical,
            "{name}: the committed file is not in canonical form \
             (regenerate with `lnuca export {name}`)"
        );
    }
}

/// Acceptance pin: the six paper configurations (L2-256KB, LN2/LN3/LN4 + L3,
/// DN-4x8, LNx + DN-4x8), driven through the committed scenario files and
/// the one `Study::run` entry point, are bit-identical to the programmatic
/// paper plans.
#[test]
fn scenario_runs_are_bit_identical_to_the_programmatic_paper_plans() {
    let opts = reduced_options();

    let conventional = ExperimentPlan::paper_conventional(&opts).expect("valid configurations");
    let dnuca = ExperimentPlan::paper_dnuca(&opts).expect("valid configurations");
    for (file, programmatic_plan) in [("paper-conventional", conventional), ("paper-dnuca", dnuca)]
    {
        let programmatic_study = Study::run(&programmatic_plan).expect("valid configurations");
        let mut plan = load(file).plan;
        plan.options = opts.clone();
        let scenario_study = Study::run(&plan).expect("valid configurations");

        assert_eq!(scenario_study.configs, programmatic_study.configs, "{file}: same matrix");
        assert_eq!(scenario_study.baseline, programmatic_study.baseline);
        assert_eq!(
            scenario_study.results, programmatic_study.results,
            "{file}: RunResults must be bit-identical between the scenario \
             path and the programmatic paper plan"
        );
        // The derived summaries follow, but they are what the figures print.
        assert_eq!(scenario_study.ipc_summary(), programmatic_study.ipc_summary());
        assert_eq!(scenario_study.energy_summary(), programmatic_study.energy_summary());
        assert_eq!(scenario_study.hit_distribution(), programmatic_study.hit_distribution());
    }
}

#[test]
fn non_paper_hierarchies_run_from_their_scenario_files() {
    let mut plan = load("ln3-no-l3").plan;
    plan.options = ExperimentOptions::builder()
        .instructions(2_000)
        .benchmarks_per_suite(Some(1))
        .build();
    let study = Study::run(&plan).expect("the composed shapes run");
    assert_eq!(study.configs, vec!["LN3-144KB", "LN3-144KB + mem"]);
    let no_l3: Vec<_> = study.results_for("LN3-144KB + mem").collect();
    assert!(!no_l3.is_empty());
    for result in no_l3 {
        assert!(result.hierarchy.l3.is_none(), "nothing behind the fabric");
        assert!(result.hierarchy.lnuca.is_some());
        assert!(result.hierarchy.memory_accesses > 0, "misses go straight to DRAM");
    }

    let mut plan = load("deep-stack").plan;
    plan.options = ExperimentOptions::builder()
        .instructions(2_000)
        .benchmarks_per_suite(Some(1))
        .build();
    let study = Study::run(&plan).expect("the deep stack runs");
    let deep_label = &study.configs[1];
    for result in study.results_for(deep_label) {
        assert_eq!(result.hierarchy.deeper_levels.len(), 1, "the L2B level reports stats");
        assert!(result.hierarchy.l2.is_some() && result.hierarchy.l3.is_some());
    }
}
